#include "sim/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace uldma::json {

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
formatNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // Integral values within the exact range of double print without
    // an exponent or decimal point.
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    for (int prec = 15; prec <= 17; ++prec) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            return buf;
    }
    return "null";  // unreachable: %.17g always round-trips
}

Writer::Writer(std::ostream &os, bool pretty) : os_(os), pretty_(pretty) {}

Writer::~Writer()
{
    // A trailing newline makes the file friendly to text tools.
    if (rootWritten_ && stack_.empty() && pretty_)
        os_ << '\n';
}

bool
Writer::complete() const
{
    return rootWritten_ && stack_.empty();
}

void
Writer::indent()
{
    if (!pretty_)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
Writer::prepareValue()
{
    ULDMA_ASSERT(!(rootWritten_ && stack_.empty()),
                 "json: only one root value per document");
    if (stack_.empty()) {
        rootWritten_ = true;
        return;
    }
    Level &top = stack_.back();
    if (top.scope == Scope::Object) {
        ULDMA_ASSERT(keyPending_, "json: object member needs a key");
        keyPending_ = false;
    } else {
        if (top.hasItems)
            os_ << ',';
        indent();
        top.hasItems = true;
    }
}

void
Writer::key(const std::string &k)
{
    ULDMA_ASSERT(!stack_.empty() && stack_.back().scope == Scope::Object,
                 "json: key() outside an object");
    ULDMA_ASSERT(!keyPending_, "json: two keys in a row");
    if (stack_.back().hasItems)
        os_ << ',';
    indent();
    stack_.back().hasItems = true;
    os_ << '"' << escape(k) << "\":";
    if (pretty_)
        os_ << ' ';
    keyPending_ = true;
}

void
Writer::beginObject()
{
    prepareValue();
    os_ << '{';
    stack_.push_back({Scope::Object, false});
}

void
Writer::endObject()
{
    ULDMA_ASSERT(!stack_.empty() && stack_.back().scope == Scope::Object,
                 "json: endObject() without beginObject()");
    ULDMA_ASSERT(!keyPending_, "json: dangling key at endObject()");
    const bool had = stack_.back().hasItems;
    stack_.pop_back();
    if (had)
        indent();
    os_ << '}';
}

void
Writer::beginArray()
{
    prepareValue();
    os_ << '[';
    stack_.push_back({Scope::Array, false});
}

void
Writer::endArray()
{
    ULDMA_ASSERT(!stack_.empty() && stack_.back().scope == Scope::Array,
                 "json: endArray() without beginArray()");
    const bool had = stack_.back().hasItems;
    stack_.pop_back();
    if (had)
        indent();
    os_ << ']';
}

void
Writer::value(const std::string &v)
{
    prepareValue();
    os_ << '"' << escape(v) << '"';
}

void
Writer::value(const char *v)
{
    value(std::string(v));
}

void
Writer::value(double v)
{
    prepareValue();
    os_ << formatNumber(v);
}

void
Writer::value(std::int64_t v)
{
    prepareValue();
    os_ << v;
}

void
Writer::value(std::uint64_t v)
{
    prepareValue();
    os_ << v;
}

void
Writer::value(bool v)
{
    prepareValue();
    os_ << (v ? "true" : "false");
}

void
Writer::valueNull()
{
    prepareValue();
    os_ << "null";
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

const Value &
Value::operator[](const std::string &k) const
{
    static const Value null_value;
    if (type_ != Type::Object)
        return null_value;
    auto it = object_.find(k);
    return it == object_.end() ? null_value : it->second;
}

const Value &
Value::operator[](std::size_t i) const
{
    static const Value null_value;
    if (type_ != Type::Array || i >= array_.size())
        return null_value;
    return array_[i];
}

bool
Value::has(const std::string &k) const
{
    return type_ == Type::Object && object_.count(k) != 0;
}

std::size_t
Value::size() const
{
    if (type_ == Type::Array)
        return array_.size();
    if (type_ == Type::Object)
        return object_.size();
    return 0;
}

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    bool
    parseDocument(Value &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

    const std::string &error() const { return error_; }

  private:
    static constexpr int maxDepth = 64;

    bool
    fail(const std::string &why)
    {
        if (error_.empty())
            error_ = why + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += n;
        return true;
    }

    bool
    parseValue(Value &out, int depth)
    {
        if (depth > maxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{': return parseObject(out, depth);
          case '[': return parseArray(out, depth);
          case '"':
            out.type_ = Value::Type::String;
            return parseString(out.string_);
          case 't':
            out.type_ = Value::Type::Bool;
            out.bool_ = true;
            return literal("true");
          case 'f':
            out.type_ = Value::Type::Bool;
            out.bool_ = false;
            return literal("false");
          case 'n':
            out.type_ = Value::Type::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(Value &out, int depth)
    {
        out.type_ = Value::Type::Object;
        ++pos_;  // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string k;
            if (!parseString(k))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            Value v;
            if (!parseValue(v, depth + 1))
                return false;
            out.object_.emplace(std::move(k), std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(Value &out, int depth)
    {
        out.type_ = Value::Type::Array;
        ++pos_;  // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            Value v;
            if (!parseValue(v, depth + 1))
                return false;
            out.array_.push_back(std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_;  // opening quote
        while (pos_ < text_.size()) {
            const unsigned char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (pos_ + 1 >= text_.size())
                    return fail("unterminated escape");
                const char e = text_[pos_ + 1];
                pos_ += 2;
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_ + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= h - '0';
                        else if (h >= 'a' && h <= 'f')
                            code |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F')
                            code |= h - 'A' + 10;
                        else
                            return fail("bad \\u escape");
                    }
                    pos_ += 4;
                    // UTF-8 encode (surrogate pairs are passed through
                    // as two separate code points; the writer never
                    // emits them).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                continue;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            out += static_cast<char>(c);
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Value &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_])))
            return fail("malformed number");
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return fail("malformed fraction");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return fail("malformed exponent");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        out.type_ = Value::Type::Number;
        out.number_ = std::strtod(text_.substr(start, pos_ - start).c_str(),
                                  nullptr);
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

Value
parse(const std::string &text, std::string *error)
{
    Parser p(text);
    Value v;
    if (!p.parseDocument(v)) {
        if (error != nullptr)
            *error = p.error();
        return Value();
    }
    if (error != nullptr)
        error->clear();
    return v;
}

bool
valid(const std::string &text)
{
    std::string error;
    parse(text, &error);
    return error.empty();
}

} // namespace uldma::json
