/**
 * @file
 * Lightweight debug tracing with named flags, in the spirit of gem5's
 * DPRINTF.  Flags are enabled programmatically or via the ULDMA_DEBUG
 * environment variable (comma-separated list, or "All").
 *
 * Tracing is for humans debugging the simulator; it never affects
 * simulated behaviour.
 */

#ifndef ULDMA_SIM_TRACE_HH
#define ULDMA_SIM_TRACE_HH

#include <string>

#include "util/logging.hh"
#include "util/types.hh"

namespace uldma::trace {

/** Enable a single debug flag (e.g. "Dma", "Bus", "Sched"). */
void enable(const std::string &flag);

/** Disable a single debug flag. */
void disable(const std::string &flag);

/** Enable/disable everything. */
void enableAll();
void disableAll();

/** True if the flag (or All) is enabled. */
bool enabled(const std::string &flag);

/** Emit one trace line (internal; use the ULDMA_TRACE macro). */
void emit(const std::string &flag, Tick when, const std::string &msg);

/** Re-read the ULDMA_DEBUG environment variable. */
void initFromEnvironment();

} // namespace uldma::trace

/**
 * Trace a message under a flag at a given simulated time.
 * Arguments after the tick are streamed, so any operator<<-able values
 * work: ULDMA_TRACE("Dma", now(), "start ctx=", ctx, " size=", size);
 */
#define ULDMA_TRACE(flag, when, ...)                                        \
    do {                                                                    \
        if (::uldma::trace::enabled(flag)) {                                \
            ::uldma::trace::emit(flag, when,                                \
                ::uldma::detail::concatToString(__VA_ARGS__));              \
        }                                                                   \
    } while (0)

#endif // ULDMA_SIM_TRACE_HH
