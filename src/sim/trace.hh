/**
 * @file
 * Lightweight debug tracing with named flags, in the spirit of gem5's
 * DPRINTF.  Flags are enabled programmatically or via the ULDMA_DEBUG
 * environment variable (comma-separated list, or "All").
 *
 * Tracing is for humans debugging the simulator; it never affects
 * simulated behaviour.
 */

#ifndef ULDMA_SIM_TRACE_HH
#define ULDMA_SIM_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/logging.hh"
#include "util/types.hh"

namespace uldma::trace {

/** Enable a single debug flag (e.g. "Dma", "Bus", "Sched"). */
void enable(const std::string &flag);

/** Disable a single debug flag. */
void disable(const std::string &flag);

/** Enable/disable everything. */
void enableAll();
void disableAll();

/** True if the flag (or All) is enabled. */
bool enabled(const std::string &flag);

/** Emit one trace line (internal; use the ULDMA_TRACE macro). */
void emit(const std::string &flag, Tick when, const std::string &msg);

/** Re-read the ULDMA_DEBUG environment variable. */
void initFromEnvironment();

// ---------------------------------------------------------------------
// Structured event capture
// ---------------------------------------------------------------------

/**
 * One structured event captured by the ring buffer: which component
 * emitted it, when, what kind of event, and a free-form payload.
 * Deliberately free of pointers and wall-clock time so captured traces
 * are byte-reproducible across identical runs.
 */
struct TraceEvent
{
    Tick tick = 0;
    std::string component;
    std::string kind;
    std::string payload;
};

/**
 * Bounded ring buffer of TraceEvents.  Storage is allocated once at
 * enable() time; when full, the oldest events are overwritten so a
 * capture always holds the *tail* of the run.  While disabled (the
 * default) the buffer holds no storage and ULDMA_TRACE_EVENT costs one
 * branch on a plain bool — no allocation, no argument formatting.
 */
class EventRing
{
  public:
    /** Allocate @p capacity slots and start capturing. */
    void enable(std::size_t capacity = 1 << 16);

    /** Stop capturing and release all storage. */
    void disable();

    bool enabled() const { return enabled_; }

    /** Drop captured events but keep capturing with the same storage. */
    void clear();

    /** Allocated slots (0 while disabled). */
    std::size_t capacity() const { return ring_.size(); }

    /** Events currently held (<= capacity). */
    std::size_t size() const { return count_; }

    /** Total events ever recorded, including overwritten ones. */
    std::uint64_t recorded() const { return recorded_; }

    /** Events lost to overwrite. */
    std::uint64_t dropped() const { return recorded_ - count_; }

    /**
     * Record-time filter: once set, only events whose component starts
     * with @p component_prefix (and, when @p kind is nonempty, whose
     * kind equals it) are stored — everything else is dropped before
     * touching the ring, so long runs can capture only one component's
     * events without overflowing.  Filtered events are counted by
     * filteredOut() and never appear in recorded()/dropped().
     */
    void setFilter(std::string component_prefix, std::string kind = "");

    /** Remove the record-time filter. */
    void clearFilter();

    bool hasFilter() const { return filterActive_; }

    /** Events dropped by the record-time filter. */
    std::uint64_t filteredOut() const { return filteredOut_; }

    /** Append one event (no-op while disabled). */
    void record(const std::string &component, Tick tick,
                const std::string &kind, std::string payload);

    /** The i-th held event in chronological order (0 = oldest). */
    const TraceEvent &at(std::size_t i) const;

    /** Copy out the held events, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    /**
     * Export the held events as a chrome://tracing / Perfetto JSON
     * document ("ts" in simulated microseconds, one thread per
     * component category).  Deterministic across identical runs.
     */
    void exportChromeTracing(std::ostream &os) const;

  private:
    bool enabled_ = false;
    std::vector<TraceEvent> ring_;
    std::size_t next_ = 0;       // next write slot
    std::size_t count_ = 0;
    std::uint64_t recorded_ = 0;
    bool filterActive_ = false;
    std::string filterComponentPrefix_;
    std::string filterKind_;
    std::uint64_t filteredOut_ = 0;
};

/**
 * The calling thread's event ring, used by ULDMA_TRACE_EVENT.
 * Thread-local: each simulation thread (e.g. one workload shard)
 * captures into its own ring, so concurrent Machines never share
 * trace state.
 */
EventRing &eventRing();

namespace detail { extern thread_local bool eventCaptureEnabled; }

/** Cheap thread-local gate checked before any event-argument
 *  formatting. */
inline bool
eventCaptureOn()
{
    return detail::eventCaptureEnabled;
}

/** One shard's event capture, for merged export (component names
 *  already rewritten to global node ids by the collector). */
struct ShardTrace
{
    unsigned shard = 0;
    std::vector<TraceEvent> events;
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
    std::uint64_t filteredOut = 0;
};

/**
 * Merge several shards' captures into one chrome://tracing document:
 * events are stably ordered by (tick, shard, capture order) and each
 * event's "pid" is its shard id, so Perfetto renders one process lane
 * per shard.  Deterministic — never depends on thread scheduling.
 */
void exportMergedChromeTracing(std::ostream &os,
                               const std::vector<ShardTrace> &shards);

} // namespace uldma::trace

/**
 * Record a structured event into the global ring buffer.  The payload
 * arguments are streamed like ULDMA_TRACE's and are only evaluated when
 * capture is enabled, so instrumented hot paths pay a single predictable
 * branch when tracing is off.
 */
#define ULDMA_TRACE_EVENT(component, when, kind, ...)                       \
    do {                                                                    \
        if (::uldma::trace::eventCaptureOn()) {                             \
            ::uldma::trace::eventRing().record(component, when, kind,       \
                ::uldma::detail::concatToString(__VA_ARGS__));              \
        }                                                                   \
    } while (0)

/**
 * Trace a message under a flag at a given simulated time.
 * Arguments after the tick are streamed, so any operator<<-able values
 * work: ULDMA_TRACE("Dma", now(), "start ctx=", ctx, " size=", size);
 */
#define ULDMA_TRACE(flag, when, ...)                                        \
    do {                                                                    \
        if (::uldma::trace::enabled(flag)) {                                \
            ::uldma::trace::emit(flag, when,                                \
                ::uldma::detail::concatToString(__VA_ARGS__));              \
        }                                                                   \
    } while (0)

#endif // ULDMA_SIM_TRACE_HH
