/**
 * @file
 * Where DMA'd bytes actually go.  The engine hands completed transfers
 * to a TransferBackend; the plain LocalBackend copies within host DRAM,
 * while the network interface's backend (nic module) forwards writes
 * whose destination falls in a remote-memory window across the network
 * (Telegraphos-style, paper [9]).
 */

#ifndef ULDMA_DMA_TRANSFER_BACKEND_HH
#define ULDMA_DMA_TRANSFER_BACKEND_HH

#include "mem/physical_memory.hh"
#include "util/types.hh"

namespace uldma {

/** Moves transfer payloads between physical locations. */
class TransferBackend
{
  public:
    virtual ~TransferBackend() = default;

    /** True if the engine may use @p paddr as a transfer endpoint. */
    virtual bool validEndpoint(Addr paddr, Addr size) const = 0;

    /**
     * Functionally move @p size bytes from @p src to @p dst.  Called at
     * transfer-completion time; either address may name a remote
     * window.
     * @return extra ticks of delivery latency beyond the engine's own
     *         transfer time (e.g. network link latency).
     */
    virtual Tick moveBytes(Addr src, Addr dst, Addr size) = 0;

    /** True if @p paddr names a remote-memory window (span metadata). */
    virtual bool remoteEndpoint(Addr paddr) const { (void)paddr;
                                                    return false; }
};

/** Backend for a single workstation: endpoints are local DRAM. */
class LocalBackend : public TransferBackend
{
  public:
    explicit LocalBackend(PhysicalMemory &memory) : memory_(memory) {}

    bool
    validEndpoint(Addr paddr, Addr size) const override
    {
        return paddr < memory_.size() && size <= memory_.size() - paddr;
    }

    Tick
    moveBytes(Addr src, Addr dst, Addr size) override
    {
        memory_.copy(dst, src, size);
        return 0;
    }

  private:
    PhysicalMemory &memory_;
};

} // namespace uldma

#endif // ULDMA_DMA_TRANSFER_BACKEND_HH
