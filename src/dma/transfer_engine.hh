/**
 * @file
 * The data-mover inside the DMA engine.  Transfers are serialized
 * through one engine pipeline (busyUntil); each transfer costs a fixed
 * startup plus size / bytesPerBusCycle bus cycles, and the payload is
 * applied functionally at completion time.  The "remaining bytes"
 * readback the register-context pages expose (paper §3.1: a read
 * returns the number of bytes yet to transfer) is interpolated from
 * the transfer schedule.
 */

#ifndef ULDMA_DMA_TRANSFER_ENGINE_HH
#define ULDMA_DMA_TRANSFER_ENGINE_HH

#include <cstdint>
#include <functional>
#include <string>

#include "dma/transfer_backend.hh"
#include "sim/clocked.hh"
#include "sim/span.hh"
#include "sim/stats.hh"

namespace uldma {

/** Handle identifying an in-flight transfer. */
using TransferId = std::uint64_t;
inline constexpr TransferId invalidTransfer = ~TransferId(0);

/** Timing parameters (shared with DmaEngineParams). */
struct TransferTiming
{
    Addr bytesPerBusCycle = 4;
    Cycles startupCycles = 8;
};

/**
 * Schedules and applies DMA data movement.
 */
class TransferEngine : public Clocked
{
  public:
    TransferEngine(EventQueue &eq, std::string name,
                   const ClockDomain &bus_clock, const TransferTiming &timing,
                   TransferBackend &backend);

    /**
     * Begin a transfer.  Bytes materialize at the destination when the
     * transfer completes; @p on_complete (may be null) runs then.
     * @param not_before earliest tick the transfer may begin (used by
     *        the kernel channel's start-delay model).
     * @param span span of the initiation this transfer serves; queue /
     *        bus-active / completed phases are recorded against it when
     *        span capture is enabled.
     * @return a handle usable with remaining().
     */
    TransferId start(Addr src, Addr dst, Addr size,
                     std::function<void()> on_complete = nullptr,
                     Tick not_before = 0,
                     span::SpanId span = span::invalidSpan);

    /** Bytes not yet transferred (0 once complete / unknown handle). */
    Addr remaining(TransferId id) const;

    /** True if the identified transfer has fully completed. */
    bool complete(TransferId id) const;

    /**
     * Cancel an in-flight transfer (capability revocation,
     * docs/CAPABILITIES.md): the pipeline stays occupied — the bus
     * cycles were spent — but the payload is never applied and the
     * transfer's span is aborted instead of completed.  on_complete
     * still runs so the initiator can observe the failure.
     * @return true if the payload was suppressed in time; false when
     *         the transfer already delivered (or is unknown).
     */
    bool cancel(TransferId id);

    /** Transfers whose payload a cancel() suppressed. */
    std::uint64_t transfersCancelled() const { return cancelledCount_; }

    /** Tick at which the engine pipeline frees up. */
    Tick busyUntil() const { return busyUntil_; }

    std::uint64_t transfersStarted() const { return started_.value(); }
    std::uint64_t transfersCompleted() const { return completed_.value(); }
    std::uint64_t bytesMoved() const { return bytes_.value(); }

    /**
     * Total ticks the serialized pipeline has been (or is committed to
     * be) busy.  Windows never overlap, so busyTicks() / now() is the
     * engine's utilization fraction — the queueing metric the sampler
     * turns into a busy/idle timeline.
     */
    std::uint64_t busyTicks() const { return busyTicks_.value(); }
    stats::Group &statsGroup() { return statsGroup_; }
    void registerStats(stats::Registry &r) { r.add(&statsGroup_); }

  private:
    struct Flight
    {
        TransferId id;
        Addr size;
        Tick startTick;
        Tick endTick;
        bool applied = false;
        bool cancelled = false;
    };

    std::string name_;
    TransferTiming timing_;
    TransferBackend &backend_;

    Tick busyUntil_ = 0;
    TransferId nextId_ = 1;
    /** Plain counter, deliberately not a registered stat: cancels only
     *  happen with capabilities enabled, and the shared stats document
     *  must stay byte-identical for disabled configurations. */
    std::uint64_t cancelledCount_ = 0;

    /** Recent transfers (kept until applied + queried once). */
    std::vector<Flight> flights_;

    stats::Group statsGroup_;
    stats::Scalar started_;
    stats::Scalar completed_;
    stats::Scalar bytes_;
    stats::Scalar busyTicks_;
    stats::Histogram latencyUs_;
    stats::Average queueWaitUs_;
};

} // namespace uldma

#endif // ULDMA_DMA_TRANSFER_ENGINE_HH
