/**
 * @file
 * The DMA engine of the network interface — the hardware half of every
 * protocol in the paper.
 *
 * The engine sits on the I/O bus and watches the *stream of physical
 * accesses* that reaches it.  It has no idea which process is running:
 * everything it can use is in the access itself (read/write, physical
 * address, payload), which is exactly the constraint the paper's
 * protocols are designed around.  Packet provenance (srcPid) is latched
 * only into the security-oracle records that tests inspect; no protocol
 * decision reads it.
 *
 * Decoded windows:
 *  - kernel register block (figure 1: SOURCE/DESTINATION/SIZE/STATUS,
 *    plus the privileged hooks the SHRIMP-2/FLASH baselines need and
 *    key/map-out management);
 *  - register-context pages (paper §3.1): stores hit the size register,
 *    loads return remaining bytes (~0 = failure, 0 = complete);
 *  - the shadow window (paper §2.3): argument-passing accesses,
 *    interpreted per EngineMode.
 */

#ifndef ULDMA_DMA_DMA_ENGINE_HH
#define ULDMA_DMA_DMA_ENGINE_HH

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dma/dma_params.hh"
#include "dma/transfer_engine.hh"
#include "mem/bus.hh"
#include "sim/span.hh"
#include "sim/stats.hh"
#include "vm/layout.hh"

namespace uldma {

/**
 * The programmable DMA controller on the NI board.
 */
class DmaEngine : public BusDevice
{
  public:
    DmaEngine(EventQueue &eq, std::string name, const ClockDomain &bus_clock,
              const DmaEngineParams &params, TransferBackend &backend);

    /// @name BusDevice interface.
    /// @{
    const std::string &deviceName() const override { return name_; }
    std::vector<AddrRange> deviceRanges() const override;
    Tick access(Packet &pkt) override;
    /// @}

    const DmaEngineParams &params() const { return params_; }
    TransferEngine &transferEngine() { return xfer_; }

    /**
     * Completion interrupt for the kernel channel: invoked when a
     * kernel-initiated transfer finishes (the OS wires its interrupt
     * handler here at boot).
     */
    void
    setKernelCompletionHandler(std::function<void()> handler)
    {
        kernelCompletionHandler_ = std::move(handler);
    }

    /** True while a kernel-channel transfer is in flight. */
    bool
    kernelChannelBusy() const
    {
        return kTransfer_ != invalidTransfer &&
               !xfer_.complete(kTransfer_);
    }

    /** Physical address of register-context page @p ctx. */
    Addr contextPageAddr(unsigned ctx) const;

    /// @name Security oracle (tests/benches only — not device state).
    /// @{
    /** Everything the engine knows about one started DMA. */
    struct InitiationRecord
    {
        Tick when;
        EngineMode mode;
        Addr src;
        Addr dst;
        Addr size;
        unsigned ctx;              ///< register context / CONTEXT_ID
        bool viaKernel;            ///< through the kernel register block
        std::vector<Pid> contributors;  ///< pids of contributing accesses
    };

    const std::vector<InitiationRecord> &initiations() const
    {
        return initiations_;
    }
    void clearInitiations() { initiations_.clear(); }
    /// @}

    /// @name Direct state inspection for unit tests.
    /// @{
    std::uint64_t contextKey(unsigned ctx) const;
    std::uint64_t currentOsTag() const { return osTag_; }
    bool pairLatchValid(unsigned ctx = 0) const;
    unsigned fsmStep() const { return fsmStep_; }
    /// @}

    /**
     * Deterministic FNV-1a hash of the engine's protocol-visible state:
     * the repeated-passing FSM, the pair latches, the register contexts
     * (validity and staged arguments; the secret keys themselves are
     * excluded), the kernel channel, the OS tag, and the event
     * counters.  Equal hashes mean the engine would treat any future
     * access stream identically; the model checker (src/check) uses
     * this to prune equivalent interleaving prefixes.
     */
    std::uint64_t stateHash() const;

    /// @name Stats.
    /// @{
    stats::Group &statsGroup() { return statsGroup_; }

    /** Registers the engine's stats and its transfer engine's. */
    void
    registerStats(stats::Registry &r)
    {
        r.add(&statsGroup_);
        transferEngine().registerStats(r);
    }

    std::uint64_t numInitiations() const { return started_.value(); }
    std::uint64_t numRejects() const { return rejected_.value(); }
    std::uint64_t numKeyMismatches() const { return keyMismatch_.value(); }
    std::uint64_t numFsmResets() const { return fsmResets_.value(); }
    /// @}

  private:
    /** One key-based register context (paper §3.1). */
    struct RegisterContext
    {
        std::uint64_t key = 0;
        bool keyValid = false;
        Addr src = 0;
        Addr dst = 0;
        Addr size = 0;
        bool srcValid = false;
        bool dstValid = false;
        bool sizeValid = false;
        TransferId transfer = invalidTransfer;
        std::vector<Pid> contributors;
        span::SpanId span = span::invalidSpan;

        void
        resetArgs()
        {
            srcValid = dstValid = sizeValid = false;
            contributors.clear();
        }
    };

    /** The STORE-latch of the two-access ShadowPair protocol. */
    struct PairLatch
    {
        bool valid = false;
        Addr dst = 0;
        Addr size = 0;
        std::uint64_t osTag = 0;   ///< FLASH: tag at latch time
        Pid contributor = invalidPid;
        span::SpanId span = span::invalidSpan;
    };

    /// @name Window handlers.
    /// @{
    void accessKernelRegs(Packet &pkt, Addr offset);
    void accessContextPage(Packet &pkt, unsigned ctx, Addr offset);
    void accessShadow(Packet &pkt);
    /// @}

    /// @name Per-protocol shadow handlers.
    /// @{
    void shadowPair(Packet &pkt, Addr target, unsigned ctx);
    void shadowKeyBased(Packet &pkt, Addr target);
    void shadowRepeated(Packet &pkt, Addr target, unsigned ctx);
    void shadowMappedOut(Packet &pkt, Addr target);
    /// @}

    /**
     * Validate and start a user-initiated transfer.  @p span (if any)
     * is rejected on refusal, or recognized and threaded through the
     * transfer engine on success.
     * @return the transfer id, or invalidTransfer on rejection.
     */
    TransferId tryStartUser(Addr src, Addr dst, Addr size, unsigned ctx,
                            const std::vector<Pid> &contributors,
                            span::SpanId span = span::invalidSpan);

    /** Start (or reject) a kernel-channel transfer. */
    void kernelStart();

    /** Reset the repeated-passing FSM. */
    void fsmReset();

    /**
     * Feed one access to the repeated-passing FSM.
     * Sets pkt.data for loads.
     */
    void fsmStepAccess(Packet &pkt, Addr target, unsigned ctx);

    std::string name_;
    DmaEngineParams params_;
    TransferBackend &backend_;
    TransferEngine xfer_;

    /// Kernel-channel completion interrupt (see the setter).
    std::function<void()> kernelCompletionHandler_;

    /// Kernel channel registers (figure 1).
    Tick kStartDelay_ = 0;
    Addr kSrc_ = 0;
    Addr kDst_ = 0;
    Addr kSize_ = 0;
    bool kFailed_ = false;
    TransferId kTransfer_ = invalidTransfer;

    /// FLASH hook state: the OS-announced current process tag.
    std::uint64_t osTag_ = 0;

    /// ShadowPair latches, one per CONTEXT_ID value (1 when no bits).
    std::vector<PairLatch> pairLatch_;

    /// Key-based register contexts.
    std::vector<RegisterContext> contexts_;

    /// Key-management staging register.
    std::uint64_t keyCtxSelect_ = 0;

    /// Mapped-out staging + table (SHRIMP-1): local pfn -> target paddr.
    std::uint64_t mapOutPfn_ = 0;
    std::unordered_map<Addr, Addr> mapOutTable_;
    /// Status of the last mapped-out initiation, readable at kSTATUS.
    TransferId mapOutTransfer_ = invalidTransfer;

    /// Repeated-passing FSM.
    unsigned fsmStep_ = 0;
    Addr fsmStoreAddr_ = 0;    ///< destination (address of the STOREs)
    Addr fsmLoadAddr_ = 0;     ///< source (address of the LOADs)
    Addr fsmSize_ = 0;
    /** CONTEXT_ID the in-progress sequence arrived through: an access
     *  through a different shadow context resets the recognizer even
     *  when its stripped target address happens to match (§3.3 applied
     *  to §3.2's extended windows). */
    unsigned fsmCtx_ = 0;
    std::vector<Pid> fsmContributors_;
    span::SpanId fsmSpan_ = span::invalidSpan;

    std::vector<InitiationRecord> initiations_;

    stats::Group statsGroup_;
    stats::Scalar shadowStores_;
    stats::Scalar shadowLoads_;
    stats::Scalar started_;
    stats::Scalar rejected_;
    stats::Scalar keyMismatch_;
    stats::Scalar fsmResets_;
    stats::Scalar crossPageRejects_;
    stats::Scalar kernelStarts_;
};

} // namespace uldma

#endif // ULDMA_DMA_DMA_ENGINE_HH
