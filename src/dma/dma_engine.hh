/**
 * @file
 * The DMA engine of the network interface — the hardware half of every
 * protocol in the paper.
 *
 * The engine sits on the I/O bus and watches the *stream of physical
 * accesses* that reaches it.  It has no idea which process is running:
 * everything it can use is in the access itself (read/write, physical
 * address, payload), which is exactly the constraint the paper's
 * protocols are designed around.  Packet provenance (srcPid) is latched
 * only into the security-oracle records that tests inspect; no protocol
 * decision reads it.
 *
 * Decoded windows:
 *  - kernel register block (figure 1: SOURCE/DESTINATION/SIZE/STATUS,
 *    plus the privileged hooks the SHRIMP-2/FLASH baselines need and
 *    key/map-out management);
 *  - register-context pages (paper §3.1): stores hit the size register,
 *    loads return remaining bytes (~0 = failure, 0 = complete);
 *  - the shadow window (paper §2.3): argument-passing accesses,
 *    interpreted per EngineMode.
 */

#ifndef ULDMA_DMA_DMA_ENGINE_HH
#define ULDMA_DMA_DMA_ENGINE_HH

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cap/cap_arbiter.hh"
#include "cap/cap_table.hh"
#include "dma/dma_params.hh"
#include "dma/transfer_engine.hh"
#include "iommu/iommu.hh"
#include "mem/bus.hh"
#include "sim/span.hh"
#include "sim/stats.hh"
#include "vm/layout.hh"

namespace uldma {

class PhysicalMemory;

/**
 * The programmable DMA controller on the NI board.
 */
class DmaEngine : public BusDevice
{
  public:
    DmaEngine(EventQueue &eq, std::string name, const ClockDomain &bus_clock,
              const DmaEngineParams &params, TransferBackend &backend);

    /// @name BusDevice interface.
    /// @{
    const std::string &deviceName() const override { return name_; }
    std::vector<AddrRange> deviceRanges() const override;
    Tick access(Packet &pkt) override;
    /// @}

    const DmaEngineParams &params() const { return params_; }
    TransferEngine &transferEngine() { return xfer_; }

    /**
     * Completion interrupt for the kernel channel: invoked when a
     * kernel-initiated transfer finishes (the OS wires its interrupt
     * handler here at boot).
     */
    void
    setKernelCompletionHandler(std::function<void()> handler)
    {
        kernelCompletionHandler_ = std::move(handler);
    }

    /** True while a kernel-channel transfer is in flight. */
    bool
    kernelChannelBusy() const
    {
        return kTransfer_ != invalidTransfer &&
               !xfer_.complete(kTransfer_);
    }

    /**
     * Local DRAM for descriptor-ring fetches and completion-record
     * writes (docs/RING.md).  Wired by the Node at construction;
     * without it the ring registers exist but every doorbell is
     * rejected.  Completion records are written through writeInt so
     * the memory's write observers (cache invalidation) fire.
     */
    void setLocalMemory(PhysicalMemory *mem) { localMemory_ = mem; }

    /**
     * Coalesced completion interrupt for the descriptor ring: invoked
     * with the register-context id when a ring transfer completes and
     * the context's policy/coalescing calls for an interrupt.
     */
    void
    setRingCompletionHandler(std::function<void(unsigned)> handler)
    {
        ringCompletionHandler_ = std::move(handler);
    }

    /**
     * Kernel fix-up hook for IOMMU translation faults under
     * IommuFaultPolicy::Trap: called with (ctx, faulting IOVA,
     * is-write).  Returns the fix-up cost in ticks when the kernel
     * repaired the mapping (the parked descriptor resumes that much
     * later, mid-transfer), or ~0 to signal failure (the descriptor
     * aborts with the error bit).
     */
    void
    setIommuFaultHandler(
        std::function<std::uint64_t(unsigned, Addr, bool)> handler)
    {
        iommuFaultHandler_ = std::move(handler);
    }

    /** The address-translation unit, or nullptr when not enabled. */
    const Iommu *iommu() const { return iommu_.get(); }
    Iommu *iommu() { return iommu_.get(); }

    /** The capability table, or nullptr when cap is not enabled. */
    const CapTable *cap() const { return cap_.get(); }
    CapTable *cap() { return cap_.get(); }
    /** The multi-tenant arbiter, or nullptr when cap is not enabled. */
    const CapArbiter *capArbiter() const { return capArbiter_.get(); }

    /** Physical address of capability presentation page @p slot. */
    Addr capPageAddr(unsigned slot) const;
    /** Last initiation status of @p slot's presentation page. */
    std::uint64_t capSlotStatus(unsigned slot) const;

    /** Number of register contexts (and descriptor rings). */
    unsigned numContexts() const
    {
        return static_cast<unsigned>(contexts_.size());
    }

    /** Outstanding (started, not yet completed) ring transfers. */
    unsigned ringOutstanding(unsigned ctx) const;
    /** Descriptors retired (completed or rejected) on @p ctx's ring. */
    std::uint64_t ringRetired(unsigned ctx) const;
    /** True once the OS committed a ring configuration for @p ctx. */
    bool ringConfigured(unsigned ctx) const;

    /** Physical address of register-context page @p ctx. */
    Addr contextPageAddr(unsigned ctx) const;

    /// @name Security oracle (tests/benches only — not device state).
    /// @{
    /** Everything the engine knows about one started DMA. */
    struct InitiationRecord
    {
        Tick when;
        EngineMode mode;
        Addr src;
        Addr dst;
        Addr size;
        unsigned ctx;              ///< register context / CONTEXT_ID
        bool viaKernel;            ///< through the kernel register block
        bool viaRing;              ///< from a descriptor-ring drain
        std::vector<Pid> contributors;  ///< pids of contributing accesses
        bool viaCap = false;       ///< from a capability presentation
        unsigned capSlot = 0;      ///< capability slot (viaCap only)
    };

    const std::vector<InitiationRecord> &initiations() const
    {
        return initiations_;
    }
    void clearInitiations() { initiations_.clear(); }
    /// @}

    /// @name Direct state inspection for unit tests.
    /// @{
    std::uint64_t contextKey(unsigned ctx) const;
    std::uint64_t currentOsTag() const { return osTag_; }
    bool pairLatchValid(unsigned ctx = 0) const;
    unsigned fsmStep() const { return fsmStep_; }
    /// @}

    /**
     * Deterministic FNV-1a hash of the engine's protocol-visible state:
     * the repeated-passing FSM, the pair latches, the register contexts
     * (validity and staged arguments; the secret keys themselves are
     * excluded), the kernel channel, the OS tag, and the event
     * counters.  Equal hashes mean the engine would treat any future
     * access stream identically; the model checker (src/check) uses
     * this to prune equivalent interleaving prefixes.
     */
    std::uint64_t stateHash() const;

    /// @name Stats.
    /// @{
    stats::Group &statsGroup() { return statsGroup_; }

    /** Registers the engine's stats and its transfer engine's. */
    void
    registerStats(stats::Registry &r)
    {
        r.add(&statsGroup_);
        if (iommu_)
            r.add(&iommu_->statsGroup());
        if (cap_) {
            r.add(&cap_->statsGroup());
            r.add(&capArbiter_->statsGroup());
        }
        transferEngine().registerStats(r);
    }

    std::uint64_t numInitiations() const { return started_.value(); }
    std::uint64_t numRejects() const { return rejected_.value(); }
    std::uint64_t numKeyMismatches() const { return keyMismatch_.value(); }
    std::uint64_t numFsmResets() const { return fsmResets_.value(); }
    std::uint64_t numRingDoorbells() const
    {
        return ringDoorbells_.value();
    }
    std::uint64_t numRingDescriptors() const
    {
        return ringDescriptors_.value();
    }
    std::uint64_t numRingRejects() const { return ringRejects_.value(); }
    std::uint64_t numRingInterrupts() const
    {
        return ringInterrupts_.value();
    }
    std::uint64_t numIommuSegments() const
    {
        return iommuSegments_.value();
    }
    std::uint64_t numIommuFaults() const
    {
        return iommuTransFaults_.value();
    }
    std::uint64_t numIommuTraps() const { return iommuTraps_.value(); }
    std::uint64_t numIommuResumes() const
    {
        return iommuResumes_.value();
    }
    std::uint64_t numIommuBypasses() const
    {
        return iommuBypasses_.value();
    }
    std::uint64_t numCapPresentations() const
    {
        return capPresentations_.value();
    }
    std::uint64_t numCapRejects() const { return capRejects_.value(); }
    std::uint64_t numCapStarts() const { return capStarts_.value(); }
    std::uint64_t numCapCancels() const { return capCancels_.value(); }
    /// @}

  private:
    /** One key-based register context (paper §3.1). */
    struct RegisterContext
    {
        std::uint64_t key = 0;
        bool keyValid = false;
        Addr src = 0;
        Addr dst = 0;
        Addr size = 0;
        bool srcValid = false;
        bool dstValid = false;
        bool sizeValid = false;
        TransferId transfer = invalidTransfer;
        std::vector<Pid> contributors;
        span::SpanId span = span::invalidSpan;

        void
        resetArgs()
        {
            srcValid = dstValid = sizeValid = false;
            contributors.clear();
        }
    };

    /** Per-context descriptor-ring state (docs/RING.md). */
    struct RingContext
    {
        bool configured = false;
        Addr base = 0;         ///< descriptor ring base (physical)
        Addr cplBase = 0;      ///< completion record base (physical)
        unsigned slots = 0;
        std::uint64_t policy = ringdesc::policyPolling;
        unsigned coalesce = 1; ///< completions per interrupt
        unsigned head = 0;     ///< next slot the engine examines
        std::uint64_t retired = 0;     ///< descriptors retired
        unsigned outstanding = 0;      ///< transfers in flight
        unsigned coalesceCount = 0;    ///< completions since interrupt
        Tick lastDoorbell = 0;         ///< observability only (latency)

        /** One kernel-authorized physical span [base, limit). */
        struct Frame
        {
            Addr base = 0;
            Addr limit = 0;
        };
        std::vector<Frame> frames;
        Addr stagedFrameBase = 0;

        /** Scatter-gather progress of one virtually-addressed
         *  descriptor (IOMMU mode): per-page segments in flight. */
        struct SlotSg
        {
            unsigned remaining = 0;  ///< segments started, not done
            bool issuing = false;    ///< inside the issue loop
            bool error = false;      ///< any segment faulted/rejected
        };
        std::unordered_map<unsigned, SlotSg> sg;

        /** A descriptor parked on an IOMMU translation fault awaiting
         *  kernel fix-up (IommuFaultPolicy::Trap).  While active, the
         *  ring drain is stalled to preserve FIFO order. */
        struct IommuPark
        {
            bool active = false;
            unsigned slot = 0;
            Addr src = 0;
            Addr dst = 0;
            Addr size = 0;
            Addr done = 0;        ///< bytes issued before the fault
            Pid pid = invalidPid;
            Addr faultIova = 0;
            bool faultWrite = false;
        };
        IommuPark park;

        void
        reset()
        {
            *this = RingContext();
        }
    };

    /** The STORE-latch of the two-access ShadowPair protocol. */
    struct PairLatch
    {
        bool valid = false;
        Addr dst = 0;
        Addr size = 0;
        std::uint64_t osTag = 0;   ///< FLASH: tag at latch time
        Pid contributor = invalidPid;
        span::SpanId span = span::invalidSpan;
    };

    /// @name Window handlers.
    /// @{
    void accessKernelRegs(Packet &pkt, Addr offset);
    void accessContextPage(Packet &pkt, unsigned ctx, Addr offset);
    void accessShadow(Packet &pkt);
    void accessCapPage(Packet &pkt, Addr window_offset);
    /// @}

    /// @name Capability path (docs/CAPABILITIES.md).
    /// @{
    /** Kernel-block capability-management register write. */
    void capManage(Addr offset, std::uint64_t value);
    /** Validate a committed presentation and enqueue it. */
    void capCommit(unsigned slot, std::uint64_t capword);
    /** Hand the pipeline to the arbiter's next pick, if idle. */
    void capDispatch();
    /** Completion bookkeeping for the dispatched transfer. */
    void capTransferDone();
    /** Revocation / teardown: fail queued and in-flight work closed. */
    void capCancelSlot(unsigned slot);
    /// @}

    /// @name Per-protocol shadow handlers.
    /// @{
    void shadowPair(Packet &pkt, Addr target, unsigned ctx);
    void shadowKeyBased(Packet &pkt, Addr target);
    void shadowRepeated(Packet &pkt, Addr target, unsigned ctx);
    void shadowMappedOut(Packet &pkt, Addr target);
    /// @}

    /**
     * Validate and start a user-initiated transfer.  @p span (if any)
     * is rejected on refusal, or recognized and threaded through the
     * transfer engine on success.
     * @return the transfer id, or invalidTransfer on rejection.
     */
    TransferId tryStartUser(Addr src, Addr dst, Addr size, unsigned ctx,
                            const std::vector<Pid> &contributors,
                            span::SpanId span = span::invalidSpan,
                            bool via_ring = false,
                            std::function<void()> on_complete = nullptr);

    /// @name Descriptor-ring path (docs/RING.md).
    /// @{
    /** Key-gated doorbell store / drain-progress load. */
    void ringDoorbell(Packet &pkt, unsigned ctx);
    /** Walk valid descriptors from head and issue/retire them. */
    void ringDrain(unsigned ctx, Pid doorbell_pid);
    /** Process one descriptor; false ends the drain (no valid bit). */
    bool ringConsume(unsigned ctx, Pid doorbell_pid);
    /** True if [addr, addr+size) lies inside an authorized frame. */
    bool ringFrameAllowed(const RingContext &ring, Addr addr,
                          Addr size) const;
    /** Retire slot @p slot: completion record + control writeback. */
    void ringRetire(unsigned ctx, unsigned slot, std::uint64_t status,
                    std::uint64_t ctrl_bits);
    /** Completion bookkeeping after a started ring transfer ends. */
    void ringTransferDone(unsigned ctx, unsigned slot);
    /// @}

    /// @name IOMMU scatter-gather path (docs/IOMMU.md).
    /// @{
    /** Consume one virtually-addressed descriptor (IOMMU mode). */
    bool ringConsumeIommu(unsigned ctx, unsigned slot, Addr src,
                          Addr dst, Addr size, Pid doorbell_pid);
    /** Translate + issue per-page segments from byte @p done on.
     *  @return false when the descriptor parked on a fault (drain
     *  must stop). */
    bool ringIssueSegments(unsigned ctx, unsigned slot, Addr src,
                           Addr dst, Addr size, Addr done, Pid pid);
    /** Segment-completion callback; retires the slot when last. */
    void ringSegmentDone(unsigned ctx, unsigned slot);
    /** Retire the slot if no segments remain in flight. */
    void maybeFinishSgSlot(unsigned ctx, unsigned slot);
    /** Defer the kernel fault fix-up call past the current access. */
    void scheduleIommuFaultFixup(unsigned ctx);
    /** Abort the parked descriptor (fix-up failed / no handler). */
    void abortParked(unsigned ctx);
    /** Resume the parked descriptor after a successful fix-up. */
    void iommuResume(unsigned ctx);
    /// @}

    /** Start (or reject) a kernel-channel transfer. */
    void kernelStart();

    /** Reset the repeated-passing FSM. */
    void fsmReset();

    /**
     * Feed one access to the repeated-passing FSM.
     * Sets pkt.data for loads.
     */
    void fsmStepAccess(Packet &pkt, Addr target, unsigned ctx);

    std::string name_;
    DmaEngineParams params_;
    TransferBackend &backend_;
    EventQueue &eq_;
    TransferEngine xfer_;

    /// Kernel-channel completion interrupt (see the setter).
    std::function<void()> kernelCompletionHandler_;

    /// Ring coalesced-completion interrupt (see the setter).
    std::function<void(unsigned)> ringCompletionHandler_;

    /// Local DRAM for descriptor fetch / completion-record writes.
    PhysicalMemory *localMemory_ = nullptr;

    /// Per-context descriptor rings, parallel to contexts_.
    std::vector<RingContext> rings_;

    /// Ring-management staging registers (kernel block).
    std::uint64_t ringCtxSelect_ = 0;
    Addr ringBaseStage_ = 0;
    Addr ringCplStage_ = 0;

    /// Address-translation unit (nullptr unless params_.iommu.enabled).
    std::unique_ptr<Iommu> iommu_;
    /// IOMMU-management staging registers (kernel block).
    std::uint64_t iommuCtxSelect_ = 0;
    Addr iommuIovaStage_ = 0;
    /// Status of the last IOMMU management op, readable at iommuStatus.
    std::uint64_t iommuLastStatus_ = 0;
    /// Kernel translation-fault fix-up hook (see the setter).
    std::function<std::uint64_t(unsigned, Addr, bool)> iommuFaultHandler_;

    /// Capability table + arbiter (nullptr unless params_.cap.enabled).
    std::unique_ptr<CapTable> cap_;
    std::unique_ptr<CapArbiter> capArbiter_;
    /// Capability-management staging registers (kernel block).
    std::uint64_t capSlotSelect_ = 0;
    Addr capSpanBaseStage_ = 0;
    /// Status of the last capability management op (kregs::capStatus).
    std::uint64_t capLastStatus_ = 0;

    /** Per-slot presentation latch: the argument stores accumulate
     *  here until the capword store commits; loads at cappage::word
     *  read back the slot's last initiation status. */
    struct CapPresentation
    {
        Addr src = 0;
        Addr dst = 0;
        Addr size = 0;
        std::uint64_t status = dmastatus::ok;
        std::vector<Pid> contributors;
    };
    std::vector<CapPresentation> capPres_;

    /// The one arbiter-dispatched transfer in flight (slot + handle).
    unsigned capActiveSlot_ = 0;
    Addr capActiveSize_ = 0;
    TransferId capActiveXfer_ = invalidTransfer;
    bool capActiveCancelled_ = false;

    /// Extra device cycles charged to the access that caused a ring
    /// drain (descriptor fetch + control writeback per slot).
    Cycles pendingExtraCycles_ = 0;

    /// Kernel channel registers (figure 1).
    Tick kStartDelay_ = 0;
    Addr kSrc_ = 0;
    Addr kDst_ = 0;
    Addr kSize_ = 0;
    bool kFailed_ = false;
    TransferId kTransfer_ = invalidTransfer;

    /// FLASH hook state: the OS-announced current process tag.
    std::uint64_t osTag_ = 0;

    /// ShadowPair latches, one per CONTEXT_ID value (1 when no bits).
    std::vector<PairLatch> pairLatch_;

    /// Key-based register contexts.
    std::vector<RegisterContext> contexts_;

    /// Key-management staging register.
    std::uint64_t keyCtxSelect_ = 0;

    /// Mapped-out staging + table (SHRIMP-1): local pfn -> target paddr.
    std::uint64_t mapOutPfn_ = 0;
    std::unordered_map<Addr, Addr> mapOutTable_;
    /// Status of the last mapped-out initiation, readable at kSTATUS.
    TransferId mapOutTransfer_ = invalidTransfer;

    /// Repeated-passing FSM.
    unsigned fsmStep_ = 0;
    Addr fsmStoreAddr_ = 0;    ///< destination (address of the STOREs)
    Addr fsmLoadAddr_ = 0;     ///< source (address of the LOADs)
    Addr fsmSize_ = 0;
    /** CONTEXT_ID the in-progress sequence arrived through: an access
     *  through a different shadow context resets the recognizer even
     *  when its stripped target address happens to match (§3.3 applied
     *  to §3.2's extended windows). */
    unsigned fsmCtx_ = 0;
    std::vector<Pid> fsmContributors_;
    span::SpanId fsmSpan_ = span::invalidSpan;

    std::vector<InitiationRecord> initiations_;

    stats::Group statsGroup_;
    stats::Scalar shadowStores_;
    stats::Scalar shadowLoads_;
    stats::Scalar started_;
    stats::Scalar rejected_;
    stats::Scalar keyMismatch_;
    stats::Scalar fsmResets_;
    stats::Scalar crossPageRejects_;
    stats::Scalar kernelStarts_;
    stats::Scalar ringDoorbells_;
    stats::Scalar ringDescriptors_;
    stats::Scalar ringRejects_;
    stats::Scalar ringFences_;
    stats::Scalar ringInterrupts_;
    stats::Histogram ringOccupancy_;
    stats::Average doorbellToRetireUs_;
    /// IOMMU-path counters (registered only when iommu.enabled, so the
    /// stats document is unchanged for non-IOMMU configurations).
    stats::Scalar iommuSegments_;
    stats::Scalar iommuTransFaults_;
    stats::Scalar iommuTraps_;
    stats::Scalar iommuResumes_;
    stats::Scalar iommuAborts_;
    stats::Scalar iommuBypasses_;
    /// Capability-path counters (registered only when cap.enabled, so
    /// the stats document is unchanged for non-cap configurations).
    stats::Scalar capPresentations_;
    stats::Scalar capRejects_;
    stats::Scalar capStarts_;
    stats::Scalar capCancels_;
};

} // namespace uldma

#endif // ULDMA_DMA_DMA_ENGINE_HH
