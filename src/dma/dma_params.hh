/**
 * @file
 * Configuration and physical-address-map of the DMA engine.
 *
 * The engine decodes four windows on the I/O bus:
 *
 *  - kernel registers: the traditional privileged register block of
 *    figure 1 (never mapped into user page tables);
 *  - register-context pages: one page per context for the key-based
 *    protocol (paper §3.1), each mappable into exactly one process;
 *  - the DMA shadow window: shadow(paddr) accesses (paper §2.3), with
 *    optional CONTEXT_ID bits above the address (paper §3.2);
 *  - (the atomic-op shadow window lives on the NIC's atomic unit, see
 *    nic/atomic_unit.hh).
 */

#ifndef ULDMA_DMA_DMA_PARAMS_HH
#define ULDMA_DMA_DMA_PARAMS_HH

#include "cap/cap_params.hh"
#include "iommu/iommu_params.hh"
#include "mem/addr_range.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace uldma {

/** Which user-level initiation protocol the engine implements. */
enum class EngineMode : std::uint8_t
{
    /**
     * Two-access STORE size TO shadow(dst); LOAD status FROM
     * shadow(src) protocol.  Used by: SHRIMP-2 (paper §2.5, with the
     * kernel invalidation hook), FLASH (§2.6, with the kernel
     * current-process notification hook), PAL code (§2.7, atomicity by
     * uninterruptible execution), and extended shadow addressing
     * (§3.2, with ctxIdBits > 0 and checkCtxId).
     */
    ShadowPair,
    /** Key-based register contexts (paper §3.1, figure 3). */
    KeyBased,
    /** 3-instruction repeated-passing (paper §3.3; exploitable, fig 5). */
    Repeated3,
    /** 4-instruction repeated-passing (paper §3.3; exploitable, fig 6). */
    Repeated4,
    /** 5-instruction repeated-passing (paper §3.3, figure 7; safe). */
    Repeated5,
    /** SHRIMP-1 mapped-out pages (paper §2.4). */
    MappedOut,
};

const char *toString(EngineMode mode);

/** Return codes delivered through shadow/context reads. */
namespace dmastatus {
/** Initiation succeeded / transfer complete. */
inline constexpr std::uint64_t ok = 0;
/** Sequence accepted so far (intermediate read of repeated-passing). */
inline constexpr std::uint64_t pending = 1;
/** Failure: bad sequence, bad key, mismatched context, bad argument. */
inline constexpr std::uint64_t failure = ~std::uint64_t(0);
} // namespace dmastatus

/** Key payload layout for the key-based protocol (paper §3.1):
 *  STORE key#context_id TO shadow(vaddr).  The low bits carry the
 *  context id, the high bits the secret key ("close to 60 bits"). */
namespace keyfield {
inline constexpr unsigned ctxBits = 3;       ///< up to 8 contexts
inline constexpr unsigned keyShift = 8;
inline constexpr unsigned keyBits = 56;

constexpr std::uint64_t
pack(std::uint64_t key, unsigned ctx)
{
    return (key << keyShift) | (ctx & mask(ctxBits));
}

constexpr unsigned ctxOf(std::uint64_t payload)
{
    return static_cast<unsigned>(payload & mask(ctxBits));
}

constexpr std::uint64_t keyOf(std::uint64_t payload)
{
    return payload >> keyShift;
}
} // namespace keyfield

/** Offsets within a register-context page. */
namespace ctxpage {
/** Stores land on the size register; loads read remaining/status. */
inline constexpr Addr sizeReg = 0x0;
/** Ring doorbell: a store of key#context_id arms the context's
 *  descriptor ring (docs/RING.md).  Loads read the drain progress. */
inline constexpr Addr ringDoorbell = 0x8;
} // namespace ctxpage

/**
 * In-memory layout of one ring descriptor (docs/RING.md).  Descriptors
 * live in plain user memory; the engine reads them with uncosted
 * functional accesses during a doorbell drain and retires each one by
 * rewriting its control word.  The control word is written *last* by
 * the user (SNIPPETS.md Snippet 2's "control word written last"
 * idiom): a descriptor without ctrl::valid terminates the drain.
 */
namespace ringdesc {
inline constexpr Addr srcOff = 0x00;   ///< source physical address
inline constexpr Addr dstOff = 0x08;   ///< destination physical address
inline constexpr Addr sizeOff = 0x10;  ///< transfer size in bytes
inline constexpr Addr ctrlOff = 0x18;  ///< control/valid word
inline constexpr Addr descBytes = 0x20;
/** Bytes of one completion record (0 = pending, dmastatus on retire). */
inline constexpr Addr cplBytes = 0x8;

namespace ctrl {
inline constexpr std::uint64_t valid = 0x1;  ///< descriptor armed
inline constexpr std::uint64_t fence = 0x2;  ///< flush: complete after
                                             ///< all prior transfers
inline constexpr std::uint64_t done = 0x4;   ///< engine: retired ok
inline constexpr std::uint64_t error = 0x8;  ///< engine: rejected
} // namespace ctrl

/** Completion policy encoded in the ringConfig register. */
inline constexpr std::uint64_t policyPolling = 0;
inline constexpr std::uint64_t policyCoalesce = 1;

/** ringConfig register layout: slots | policy << 8 | coalesce << 16. */
constexpr std::uint64_t
packConfig(std::uint64_t slots, std::uint64_t policy,
           std::uint64_t coalesce)
{
    return slots | (policy << 8) | (coalesce << 16);
}

constexpr std::uint64_t slotsOf(std::uint64_t cfg) { return cfg & 0xff; }
constexpr std::uint64_t policyOf(std::uint64_t cfg)
{
    return (cfg >> 8) & 0xff;
}
constexpr std::uint64_t coalesceOf(std::uint64_t cfg)
{
    return (cfg >> 16) & 0xff;
}
} // namespace ringdesc

/** Offsets within the kernel register block (figure 1's registers). */
namespace kregs {
/**
 * Kernel-channel start delay in ticks, written once at boot: the
 * simulator charges syscall time as a lump when the trap returns, but
 * the engine's SIZE write physically happens after the kernel's
 * entry + translation work, so transfers on the kernel channel begin
 * this long after the trap instant.  Keeps the data's wall-clock
 * position honest without splitting the syscall into timed phases.
 */
inline constexpr Addr startDelay = 0x58;
inline constexpr Addr source = 0x00;
inline constexpr Addr destination = 0x08;
inline constexpr Addr size = 0x10;       ///< writing starts the DMA
inline constexpr Addr status = 0x18;     ///< remaining bytes of kernel DMA
/** FLASH hook: the OS writes the running process's tag here. */
inline constexpr Addr osProcessTag = 0x20;
/** SHRIMP-2 hook: any write aborts a half-initiated user DMA. */
inline constexpr Addr invalidate = 0x28;
/** Key management: the OS writes keys via keyCtxSelect/keyValue. */
inline constexpr Addr keyCtxSelect = 0x30;
inline constexpr Addr keyValue = 0x38;
/** Context ownership: clears one register context. */
inline constexpr Addr ctxReset = 0x40;
/** Mapped-out table management (SHRIMP-1): pfn / node+pfn pair. */
inline constexpr Addr mapOutPfn = 0x48;
inline constexpr Addr mapOutTarget = 0x50;
/** Descriptor-ring management (docs/RING.md): the OS selects a
 *  context, programs the ring/completion base addresses, then commits
 *  slot count + completion policy via ringConfig.  The frame pair
 *  appends one authorized physical frame span to the context's
 *  ring-DMA rights table (base write latches, limit write commits). */
inline constexpr Addr ringCtxSelect = 0x60;
inline constexpr Addr ringBase = 0x68;
inline constexpr Addr ringCplBase = 0x70;
inline constexpr Addr ringConfig = 0x78;
inline constexpr Addr ringFrameBase = 0x80;
inline constexpr Addr ringFrameLimit = 0x88;
/** IOMMU management (docs/IOMMU.md): the OS selects a context and an
 *  IOVA, then commits a mapping / unmap / pin.  iommuMapEntry carries
 *  the physical frame address with permission bits in the low bits
 *  (see iommumap below); iommuStatus reads back whether the last
 *  operation succeeded (dmastatus::ok / dmastatus::failure), which is
 *  how the kernel learns about pin-budget exhaustion. */
inline constexpr Addr iommuCtxSelect = 0x90;
inline constexpr Addr iommuIova = 0x98;
inline constexpr Addr iommuMapEntry = 0xA0;
inline constexpr Addr iommuUnmap = 0xA8;
inline constexpr Addr iommuPin = 0xB0;
inline constexpr Addr iommuStatus = 0xB8;
/** Capability-table management (docs/CAPABILITIES.md): the OS selects
 *  a slot, appends authorized frame spans (base write latches, limit
 *  write commits one span), sets rights + rate class via capConfig,
 *  and arms the slot by writing its secret to capSecret.  capOp
 *  carries lifecycle operations (capop below); capStatus reads back
 *  whether the last capability operation succeeded. */
inline constexpr Addr capSlotSelect = 0xC0;
inline constexpr Addr capSpanBase = 0xC8;
inline constexpr Addr capSpanLimit = 0xD0;
inline constexpr Addr capConfig = 0xD8;
inline constexpr Addr capSecret = 0xE0;
inline constexpr Addr capOp = 0xE8;
inline constexpr Addr capStatus = 0xF0;
inline constexpr Addr blockSize = 0x100;
} // namespace kregs

/** Bit layout of the kregs::iommuMapEntry payload.  Pages are 8 KiB,
 *  so the low 13 bits of the frame address are free for flags. */
namespace iommumap {
inline constexpr std::uint64_t read = 1 << 0;
inline constexpr std::uint64_t write = 1 << 1;
inline constexpr std::uint64_t pin = 1 << 2;
inline constexpr std::uint64_t flagMask = read | write | pin;
} // namespace iommumap

/** kregs::capOp operations. */
namespace capop {
/** Bump the slot's generation: every outstanding capword fails closed
 *  (including queued and in-flight transfers, which are cancelled). */
inline constexpr std::uint64_t revoke = 1;
/** Tear the slot down entirely (process exit). */
inline constexpr std::uint64_t invalidate = 2;
} // namespace capop

/** kregs::capConfig layout: span rights in the low nibble
 *  (caprights::*), the arbiter rate class above them. */
namespace capconfig {
constexpr std::uint64_t
pack(std::uint64_t rights, unsigned rate_class)
{
    return (rights & 0xf) | (std::uint64_t(rate_class) << 4);
}
constexpr std::uint64_t rightsOf(std::uint64_t cfg) { return cfg & 0xf; }
constexpr unsigned rateClassOf(std::uint64_t cfg)
{
    return static_cast<unsigned>((cfg >> 4) & 0xf);
}
} // namespace capconfig

/** Full engine configuration. */
struct DmaEngineParams
{
    EngineMode mode = EngineMode::ShadowPair;

    /** CONTEXT_ID bits carved out of the shadow physical address
     *  (paper §3.2 envisions 1-2 bits).  In ShadowPair mode the engine
     *  keeps one argument latch per CONTEXT_ID value, which is the
     *  §3.2 matching rule in hardware form. */
    unsigned ctxIdBits = 0;

    /** FLASH baseline (paper §2.6): the latch records the OS-announced
     *  process tag and the completing LOAD must observe the same tag.
     *  Requires the kernel context-switch hook that writes
     *  kregs::osProcessTag — i.e. a kernel modification. */
    bool flashTagCheck = false;

    /** Number of register contexts (paper §3.1 suggests 4 to 8). */
    unsigned numContexts = 4;

    /**
     * Fault injection for the model checker (src/check): weaken the
     * repeated-passing sequence recognizer so mid-sequence accesses are
     * accepted without the §3.3 same-address checks (the new address is
     * adopted instead of resetting).  This reproduces the vulnerable
     * recognizer the paper argues against; never set outside tests.
     */
    bool weakRecognizer = false;

    /**
     * Fault injection for the model checker (src/check): disable the
     * per-context authorized-frame check on ring descriptors, so a
     * process that can arm its own ring can name *any* physical frame
     * in a descriptor.  This is the vulnerability the ring-isolation
     * invariant exists to catch; never set outside tests.
     */
    bool weakRing = false;

    /**
     * Fault injection for the model checker (src/check): on an IOMMU
     * translation fault, fall back to interpreting the descriptor's
     * address as a raw physical address instead of faulting.  This is
     * the translation bypass an IOMMU exists to rule out; never set
     * outside tests.
     */
    bool weakIommu = false;

    /**
     * Fault injection for the model checker (src/check): accept every
     * capability presentation without the secret/generation/span
     * validation — any capword starts the transfer it names.  This is
     * exactly what an unforgeable capability exists to rule out; never
     * set outside tests.
     */
    bool weakCap = false;

    /** Address-translation unit between the engine and the bus.  When
     *  iommu.enabled, ring descriptors carry user virtual addresses
     *  (IOVAs) and the engine scatter-gathers them into per-page
     *  physical segments (docs/IOMMU.md).  Disabled by default: the
     *  engine is then byte-identical to the pre-IOMMU model. */
    IommuParams iommu;

    /** Capability-gated initiation family (docs/CAPABILITIES.md).
     *  When cap.enabled the engine decodes one presentation page per
     *  capability slot at capPagesBase and arbitrates validated
     *  presentations per rate class.  Disabled by default: the engine
     *  is then byte-identical to the pre-capability model. */
    CapParams cap;

    /** Device-side latency of a register/shadow access in bus cycles
     *  (the FPGA of the prototype board). */
    Cycles accessCycles = 3;

    /** Bytes moved per bus cycle once a transfer is running. */
    Addr bytesPerBusCycle = 4;
    /** Fixed start-up cost of a transfer in bus cycles. */
    Cycles transferStartupCycles = 8;

    /** User-level transfers may not cross a page boundary (the shadow
     *  mapping only proves rights to one page); kernel transfers may. */
    Addr userMaxTransfer = 8 * 1024;
    /** Upper bound for kernel-initiated transfers. */
    Addr kernelMaxTransfer = 1 << 20;

    /// @name Physical address map.
    /// @{
    Addr kernelRegsBase = 0x4000'0000;
    Addr contextPagesBase = 0x4001'0000;
    /** Capability presentation pages, one per slot (cap.enabled). */
    Addr capPagesBase = 0x4200'0000;
    Addr shadowBase = 0x8000'0000;
    /** Physical addresses representable through the shadow window
     *  (DRAM + remote windows must fit below this). */
    Addr shadowCoverage = 0x2000'0000;
    /// @}

    /** log2 of shadowCoverage (the CONTEXT_ID field sits above it). */
    unsigned
    coverageShift() const
    {
        ULDMA_ASSERT(isPowerOf2(shadowCoverage),
                     "shadowCoverage must be a power of two");
        return floorLog2(shadowCoverage);
    }

    /** Size of the whole shadow window including CONTEXT_ID bits. */
    Addr shadowWindowSize() const { return shadowCoverage << ctxIdBits; }

    /**
     * shadow(paddr) for context @p ctx: the physical address a shadow
     * page-table mapping points at (paper §2.3/§3.2).
     */
    Addr
    shadowAddr(Addr paddr, unsigned ctx = 0) const
    {
        ULDMA_ASSERT(paddr < shadowCoverage,
                     "paddr 0x", std::hex, paddr,
                     " not representable in shadow window");
        ULDMA_ASSERT(ctx < (1u << ctxIdBits) || ctx == 0,
                     "context id out of range");
        return shadowBase + ((Addr(ctx) << coverageShift())) + paddr;
    }

    /** Inverse of shadowAddr: recover (paddr, ctx). */
    void
    decodeShadow(Addr shadow_paddr, Addr &paddr, unsigned &ctx) const
    {
        const Addr offset = shadow_paddr - shadowBase;
        paddr = offset & (shadowCoverage - 1);
        ctx = static_cast<unsigned>(offset >> coverageShift());
    }
};

} // namespace uldma

#endif // ULDMA_DMA_DMA_PARAMS_HH
