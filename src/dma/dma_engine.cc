#include "dma/dma_engine.hh"

#include <algorithm>

#include "mem/physical_memory.hh"
#include "prof/profiler.hh"
#include "sim/event.hh"
#include "sim/ticks.hh"
#include "sim/trace.hh"
#include "util/logging.hh"

namespace uldma {

const char *
toString(EngineMode mode)
{
    switch (mode) {
      case EngineMode::ShadowPair: return "shadow-pair";
      case EngineMode::KeyBased: return "key-based";
      case EngineMode::Repeated3: return "repeated-3";
      case EngineMode::Repeated4: return "repeated-4";
      case EngineMode::Repeated5: return "repeated-5";
      case EngineMode::MappedOut: return "mapped-out";
    }
    return "?";
}

DmaEngine::DmaEngine(EventQueue &eq, std::string name,
                     const ClockDomain &bus_clock,
                     const DmaEngineParams &params, TransferBackend &backend)
    : name_(std::move(name)), params_(params), backend_(backend),
      eq_(eq),
      xfer_(eq, name_ + ".xfer", bus_clock,
            TransferTiming{params.bytesPerBusCycle,
                           params.transferStartupCycles},
            backend),
      statsGroup_(name_),
      ringOccupancy_(0.0, 64.0, 16)
{
    ULDMA_ASSERT(params_.numContexts >= 1 && params_.numContexts <= 8,
                 "numContexts must be in [1, 8]");
    ULDMA_ASSERT(params_.ctxIdBits <= 2,
                 "the paper envisions at most 2 CONTEXT_ID bits");

    pairLatch_.resize(std::size_t(1) << params_.ctxIdBits);
    contexts_.resize(params_.numContexts);
    rings_.resize(params_.numContexts);

    if (params_.iommu.enabled) {
        iommu_ = std::make_unique<Iommu>(name_ + ".iommu", params_.iommu,
                                         params_.numContexts);
    }

    if (params_.cap.enabled) {
        cap_ = std::make_unique<CapTable>(name_ + ".cap", params_.cap);
        capArbiter_ = std::make_unique<CapArbiter>(
            name_ + ".cap_arbiter", params_.cap.rateClasses);
        capPres_.resize(params_.cap.numSlots);
    }

    statsGroup_.addScalar("shadow_stores", &shadowStores_,
                          "stores decoded in the shadow window");
    statsGroup_.addScalar("shadow_loads", &shadowLoads_,
                          "loads decoded in the shadow window");
    statsGroup_.addScalar("initiations", &started_,
                          "DMA transfers started");
    statsGroup_.addScalar("rejections", &rejected_,
                          "initiation attempts rejected");
    statsGroup_.addScalar("key_mismatches", &keyMismatch_,
                          "key-based stores with a wrong key");
    statsGroup_.addScalar("fsm_resets", &fsmResets_,
                          "repeated-passing sequence resets");
    statsGroup_.addScalar("cross_page_rejects", &crossPageRejects_,
                          "user transfers rejected for page crossing");
    statsGroup_.addScalar("kernel_starts", &kernelStarts_,
                          "kernel-channel DMA starts");
    statsGroup_.addScalar("ring_doorbells", &ringDoorbells_,
                          "accepted descriptor-ring doorbells");
    statsGroup_.addScalar("ring_descriptors", &ringDescriptors_,
                          "ring descriptors drained");
    statsGroup_.addScalar("ring_rejects", &ringRejects_,
                          "ring descriptors rejected");
    statsGroup_.addScalar("ring_fences", &ringFences_,
                          "ring fence descriptors retired");
    statsGroup_.addScalar("ring_interrupts", &ringInterrupts_,
                          "coalesced ring completion interrupts");
    statsGroup_.addHistogram("ring_occupancy", &ringOccupancy_,
                             "in-flight ring transfers after each drain");
    statsGroup_.addAverage("doorbell_to_retire_us", &doorbellToRetireUs_,
                           "doorbell to descriptor retirement (us)");
    // IOMMU-path scalars join the group only when the unit exists, so
    // the stats document of a non-IOMMU engine is byte-identical to
    // the pre-IOMMU model.
    if (iommu_) {
        statsGroup_.addScalar("iommu_segments", &iommuSegments_,
                              "per-page scatter-gather segments issued");
        statsGroup_.addScalar("iommu_faults", &iommuTransFaults_,
                              "descriptor translation faults seen");
        statsGroup_.addScalar("iommu_traps", &iommuTraps_,
                              "faults parked for kernel fix-up");
        statsGroup_.addScalar("iommu_resumes", &iommuResumes_,
                              "parked descriptors resumed mid-transfer");
        statsGroup_.addScalar("iommu_aborts", &iommuAborts_,
                              "descriptors aborted on a fault");
        statsGroup_.addScalar("iommu_bypasses", &iommuBypasses_,
                              "weak-model translation bypasses");
    }
    // Capability-path scalars likewise join only when the family is
    // enabled, keeping non-cap stats documents byte-identical.
    if (cap_) {
        statsGroup_.addScalar("cap_presentations", &capPresentations_,
                              "capability presentations committed");
        statsGroup_.addScalar("cap_rejects", &capRejects_,
                              "presentations refused by validation");
        statsGroup_.addScalar("cap_starts", &capStarts_,
                              "transfers started from presentations");
        statsGroup_.addScalar("cap_cancels", &capCancels_,
                              "queued/in-flight work failed closed by "
                              "revocation");
    }
}

std::vector<AddrRange>
DmaEngine::deviceRanges() const
{
    std::vector<AddrRange> ranges = {
        AddrRange(params_.kernelRegsBase,
                  params_.kernelRegsBase + kregs::blockSize),
        AddrRange(params_.contextPagesBase,
                  params_.contextPagesBase + params_.numContexts * pageSize),
        AddrRange(params_.shadowBase,
                  params_.shadowBase + params_.shadowWindowSize()),
    };
    if (cap_) {
        ranges.push_back(AddrRange(
            params_.capPagesBase,
            params_.capPagesBase + Addr(params_.cap.numSlots) * pageSize));
    }
    return ranges;
}

Addr
DmaEngine::contextPageAddr(unsigned ctx) const
{
    ULDMA_ASSERT(ctx < params_.numContexts, "context id out of range");
    return params_.contextPagesBase + Addr(ctx) * pageSize;
}

std::uint64_t
DmaEngine::contextKey(unsigned ctx) const
{
    ULDMA_ASSERT(ctx < params_.numContexts, "context id out of range");
    return contexts_[ctx].key;
}

bool
DmaEngine::pairLatchValid(unsigned ctx) const
{
    return ctx < pairLatch_.size() && pairLatch_[ctx].valid;
}

Tick
DmaEngine::access(Packet &pkt)
{
    ULDMA_PROF_SCOPE("dma.access");
    const Addr a = pkt.paddr;
    if (a >= params_.kernelRegsBase &&
        a < params_.kernelRegsBase + kregs::blockSize) {
        accessKernelRegs(pkt, a - params_.kernelRegsBase);
    } else if (a >= params_.contextPagesBase &&
               a < params_.contextPagesBase +
                       params_.numContexts * pageSize) {
        const Addr offset = a - params_.contextPagesBase;
        accessContextPage(pkt, static_cast<unsigned>(offset / pageSize),
                          offset % pageSize);
    } else if (cap_ && a >= params_.capPagesBase &&
               a < params_.capPagesBase +
                       Addr(params_.cap.numSlots) * pageSize) {
        accessCapPage(pkt, a - params_.capPagesBase);
    } else if (a >= params_.shadowBase &&
               a < params_.shadowBase + params_.shadowWindowSize()) {
        accessShadow(pkt);
    } else {
        ULDMA_PANIC(name_, ": access to unmapped engine address 0x",
                    std::hex, a);
    }
    // A doorbell drain charges its descriptor walk to the access that
    // triggered it (pendingExtraCycles_, see ringDrain).
    const Cycles cycles = params_.accessCycles + pendingExtraCycles_;
    pendingExtraCycles_ = 0;
    return xfer_.clockDomain().cyclesToTicks(cycles);
}

// ---------------------------------------------------------------------
// Kernel register block.
// ---------------------------------------------------------------------

void
DmaEngine::accessKernelRegs(Packet &pkt, Addr offset)
{
    if (pkt.isWrite()) {
        switch (offset) {
          case kregs::source:
            kSrc_ = pkt.data;
            break;
          case kregs::destination:
            kDst_ = pkt.data;
            break;
          case kregs::size:
            kSize_ = pkt.data;
            kernelStart();
            break;
          case kregs::osProcessTag:
            // FLASH hook: the modified context-switch handler tells the
            // engine who runs now (paper §2.6).
            osTag_ = pkt.data;
            break;
          case kregs::invalidate:
            // SHRIMP-2 hook: abort half-initiated user DMAs on context
            // switch (paper §2.5).
            for (PairLatch &latch : pairLatch_) {
                if (latch.valid && span::captureOn())
                    span::tracker().abort(latch.span, xfer_.now());
                latch.valid = false;
                latch.span = span::invalidSpan;
            }
            fsmReset();
            break;
          case kregs::keyCtxSelect:
            keyCtxSelect_ = pkt.data;
            break;
          case kregs::keyValue:
            if (keyCtxSelect_ < contexts_.size()) {
                contexts_[keyCtxSelect_].key = pkt.data;
                contexts_[keyCtxSelect_].keyValid = true;
            }
            break;
          case kregs::ctxReset:
            if (pkt.data < contexts_.size()) {
                RegisterContext &rc = contexts_[pkt.data];
                if (rc.span != span::invalidSpan && span::captureOn())
                    span::tracker().abort(rc.span, xfer_.now());
                rc.resetArgs();
                rc.transfer = invalidTransfer;
                rc.keyValid = false;
                rc.span = span::invalidSpan;
                // The ring dies with its context: a re-granted context
                // must not inherit the old owner's ring or rights.
                rings_[pkt.data].reset();
                // So do its device-visible mappings and pins.
                if (iommu_)
                    iommu_->resetContext(static_cast<unsigned>(pkt.data));
            }
            break;
          case kregs::startDelay:
            kStartDelay_ = pkt.data;
            break;
          case kregs::mapOutPfn:
            mapOutPfn_ = pkt.data;
            break;
          case kregs::mapOutTarget:
            mapOutTable_[mapOutPfn_] = pkt.data;
            break;
          case kregs::ringCtxSelect:
            ringCtxSelect_ = pkt.data;
            break;
          case kregs::ringBase:
            ringBaseStage_ = pkt.data;
            break;
          case kregs::ringCplBase:
            ringCplStage_ = pkt.data;
            break;
          case kregs::ringConfig:
            // Commits the staged bases for the selected context.  The
            // OS programs this from setup code; user processes can
            // never reach the kernel block, which is the whole
            // protection argument for ring configuration.
            if (ringCtxSelect_ < rings_.size()) {
                RingContext &ring = rings_[ringCtxSelect_];
                ring.reset();
                ring.base = ringBaseStage_;
                ring.cplBase = ringCplStage_;
                ring.slots = static_cast<unsigned>(
                    ringdesc::slotsOf(pkt.data));
                ring.policy = ringdesc::policyOf(pkt.data);
                ring.coalesce = std::max<unsigned>(
                    1, static_cast<unsigned>(
                           ringdesc::coalesceOf(pkt.data)));
                ring.configured = ring.slots > 0;
            }
            break;
          case kregs::ringFrameBase:
            if (ringCtxSelect_ < rings_.size())
                rings_[ringCtxSelect_].stagedFrameBase = pkt.data;
            break;
          case kregs::ringFrameLimit:
            // Commit one authorized [base, limit) frame span.
            if (ringCtxSelect_ < rings_.size()) {
                RingContext &ring = rings_[ringCtxSelect_];
                if (pkt.data > ring.stagedFrameBase) {
                    ring.frames.push_back(
                        {ring.stagedFrameBase, pkt.data});
                }
            }
            break;
          case kregs::iommuCtxSelect:
            iommuCtxSelect_ = pkt.data;
            break;
          case kregs::iommuIova:
            iommuIovaStage_ = pkt.data;
            break;
          case kregs::iommuMapEntry:
            // Commit iommuIova -> frame for the selected context.  The
            // kernel reads iommuStatus back to learn about pin-budget
            // exhaustion (docs/IOMMU.md).
            if (iommu_ && iommuCtxSelect_ < contexts_.size()) {
                Rights rights = Rights::None;
                if (pkt.data & iommumap::read)
                    rights = rights | Rights::Read;
                if (pkt.data & iommumap::write)
                    rights = rights | Rights::Write;
                const bool ok = iommu_->mapPage(
                    static_cast<unsigned>(iommuCtxSelect_),
                    iommuIovaStage_, pkt.data & ~iommumap::flagMask,
                    rights, pkt.data & iommumap::pin);
                iommuLastStatus_ = ok ? dmastatus::ok : dmastatus::failure;
            } else {
                iommuLastStatus_ = dmastatus::failure;
            }
            break;
          case kregs::iommuUnmap:
            if (iommu_ && iommuCtxSelect_ < contexts_.size()) {
                iommu_->unmapPage(static_cast<unsigned>(iommuCtxSelect_),
                                  pkt.data);
                iommuLastStatus_ = dmastatus::ok;
            } else {
                iommuLastStatus_ = dmastatus::failure;
            }
            break;
          case kregs::iommuPin:
            if (iommu_ && iommuCtxSelect_ < contexts_.size()) {
                const bool ok = iommu_->pinPage(
                    static_cast<unsigned>(iommuCtxSelect_), pkt.data);
                iommuLastStatus_ = ok ? dmastatus::ok : dmastatus::failure;
            } else {
                iommuLastStatus_ = dmastatus::failure;
            }
            break;
          case kregs::capSlotSelect:
          case kregs::capSpanBase:
          case kregs::capSpanLimit:
          case kregs::capConfig:
          case kregs::capSecret:
          case kregs::capOp:
            capManage(offset, pkt.data);
            break;
          default:
            ULDMA_WARN(name_, ": write to unknown kernel register 0x",
                       std::hex, offset);
        }
        return;
    }

    switch (offset) {
      case kregs::status:
        if (kFailed_)
            pkt.data = dmastatus::failure;
        else if (kTransfer_ != invalidTransfer)
            pkt.data = xfer_.remaining(kTransfer_);
        else
            pkt.data = 0;
        break;
      case kregs::source:
        pkt.data = kSrc_;
        break;
      case kregs::destination:
        pkt.data = kDst_;
        break;
      case kregs::size:
        pkt.data = kSize_;
        break;
      case kregs::osProcessTag:
        pkt.data = osTag_;
        break;
      case kregs::iommuStatus:
        pkt.data = iommuLastStatus_;
        break;
      case kregs::capStatus:
        pkt.data = capLastStatus_;
        break;
      default:
        pkt.data = 0;
    }
}

void
DmaEngine::kernelStart()
{
    ++kernelStarts_;
    kFailed_ = false;

    // Adopt the span sysDma staged at trap entry (so the recorded
    // end-to-end time includes syscall overhead); open one here if the
    // registers were programmed directly (tests, bare-metal use).
    span::SpanId sid = span::invalidSpan;
    if (span::captureOn()) {
        sid = span::tracker().takeStagedKernel();
        if (sid == span::invalidSpan)
            sid = span::tracker().open(name_, "kernel", xfer_.now());
    }

    if (kSize_ == 0 || kSize_ > params_.kernelMaxTransfer ||
        !backend_.validEndpoint(kSrc_, kSize_) ||
        !backend_.validEndpoint(kDst_, kSize_)) {
        kFailed_ = true;
        ++rejected_;
        if (span::captureOn())
            span::tracker().reject(sid, xfer_.now());
        ULDMA_TRACE_EVENT(name_, xfer_.now(), "dma_reject",
                          "kernel args invalid, size ", kSize_);
        return;
    }

    if (span::captureOn())
        span::tracker().recognize(sid, xfer_.now(), 0, /*via_kernel=*/true,
                                  kSize_);

    // Kernel transfers may span pages: the kernel checked the whole
    // range in software (figure 1's check_size()).  The transfer's
    // wall-clock start honours the syscall entry time (startDelay).
    kTransfer_ = xfer_.start(
        kSrc_, kDst_, kSize_,
        [this]() {
            if (kernelCompletionHandler_)
                kernelCompletionHandler_();
        },
        xfer_.now() + kStartDelay_, sid);
    ++started_;
    ULDMA_TRACE_EVENT(name_, xfer_.now(), "dma_kernel_start",
                      "size ", kSize_);
    initiations_.push_back(InitiationRecord{
        xfer_.now(), params_.mode, kSrc_, kDst_, kSize_, 0,
        /*viaKernel=*/true, /*viaRing=*/false, {}});
}

// ---------------------------------------------------------------------
// Register-context pages (paper §3.1).
// ---------------------------------------------------------------------

void
DmaEngine::accessContextPage(Packet &pkt, unsigned ctx, Addr offset)
{
    // The ring doorbell is the one decoded offset besides the size
    // register (paper §3.1 stores land on SIZE wherever they hit).
    if (offset == ctxpage::ringDoorbell) {
        ringDoorbell(pkt, ctx);
        return;
    }
    RegisterContext &rc = contexts_[ctx];

    if (pkt.isWrite()) {
        if (span::captureOn() && rc.span == span::invalidSpan) {
            rc.span = span::tracker().open(name_, toString(params_.mode),
                                           xfer_.now());
        }
        rc.size = pkt.data;
        rc.sizeValid = true;
        rc.contributors.push_back(pkt.srcPid);
        return;
    }

    // Load: initiation attempt or completion poll.
    if (rc.srcValid && rc.dstValid && rc.sizeValid) {
        rc.contributors.push_back(pkt.srcPid);
        const TransferId id = tryStartUser(rc.src, rc.dst, rc.size, ctx,
                                           rc.contributors, rc.span);
        rc.span = span::invalidSpan;
        rc.resetArgs();
        if (id == invalidTransfer) {
            pkt.data = dmastatus::failure;
        } else {
            rc.transfer = id;
            pkt.data = xfer_.remaining(id);
        }
        return;
    }

    if (rc.transfer != invalidTransfer) {
        pkt.data = xfer_.remaining(rc.transfer);
        return;
    }

    // Incomplete argument set: report failure and discard the stale
    // arguments so the process restarts its sequence cleanly.
    if (span::captureOn()) {
        span::SpanId sid = rc.span != span::invalidSpan
            ? rc.span
            : span::tracker().open(name_, toString(params_.mode),
                                   xfer_.now());
        span::tracker().reject(sid, xfer_.now());
        rc.span = span::invalidSpan;
    }
    rc.resetArgs();
    pkt.data = dmastatus::failure;
}

// ---------------------------------------------------------------------
// Shadow window dispatch (paper §2.3).
// ---------------------------------------------------------------------

void
DmaEngine::accessShadow(Packet &pkt)
{
    if (pkt.isWrite())
        ++shadowStores_;
    else
        ++shadowLoads_;

    Addr target = 0;
    unsigned ctx = 0;
    params_.decodeShadow(pkt.paddr, target, ctx);

    switch (params_.mode) {
      case EngineMode::ShadowPair:
        shadowPair(pkt, target, ctx);
        break;
      case EngineMode::KeyBased:
        shadowKeyBased(pkt, target);
        break;
      case EngineMode::Repeated3:
      case EngineMode::Repeated4:
      case EngineMode::Repeated5:
        shadowRepeated(pkt, target, ctx);
        break;
      case EngineMode::MappedOut:
        shadowMappedOut(pkt, target);
        break;
    }
}

void
DmaEngine::shadowPair(Packet &pkt, Addr target, unsigned ctx)
{
    PairLatch &latch = pairLatch_.at(ctx);

    if (pkt.isWrite()) {
        // STORE size TO shadow(vdestination): latch the destination.
        if (span::captureOn()) {
            if (latch.valid)
                span::tracker().abort(latch.span, xfer_.now());
            latch.span = span::tracker().open(name_, toString(params_.mode),
                                              xfer_.now());
        }
        latch.valid = true;
        latch.dst = target;
        latch.size = pkt.data;
        latch.osTag = osTag_;
        latch.contributor = pkt.srcPid;
        return;
    }

    // LOAD status FROM shadow(vsource): complete the pair.
    span::SpanId sid = span::invalidSpan;
    if (span::captureOn()) {
        sid = latch.valid ? latch.span
                          : span::tracker().open(name_,
                                                 toString(params_.mode),
                                                 xfer_.now());
    }

    bool ok = latch.valid;
    if (ok && params_.flashTagCheck && latch.osTag != osTag_) {
        // FLASH: the latch came from a process that has since been
        // switched out; refuse to mix arguments (paper §2.6).
        ok = false;
    }

    if (!ok) {
        latch.valid = false;
        latch.span = span::invalidSpan;
        ++rejected_;
        if (span::captureOn())
            span::tracker().reject(sid, xfer_.now());
        pkt.data = dmastatus::failure;
        return;
    }

    const TransferId id = tryStartUser(target, latch.dst, latch.size, ctx,
                                       {latch.contributor, pkt.srcPid}, sid);
    latch.valid = false;
    latch.span = span::invalidSpan;
    pkt.data = id == invalidTransfer ? dmastatus::failure : dmastatus::ok;
}

void
DmaEngine::shadowKeyBased(Packet &pkt, Addr target)
{
    if (!pkt.isWrite()) {
        // The key-based protocol passes both addresses with stores
        // (paper §3.1); a shadow load is undefined and rejected.
        ++rejected_;
        if (span::captureOn()) {
            auto &t = span::tracker();
            t.reject(t.open(name_, toString(params_.mode), xfer_.now()),
                     xfer_.now());
        }
        pkt.data = dmastatus::failure;
        return;
    }

    const unsigned ctx = keyfield::ctxOf(pkt.data);
    if (ctx >= contexts_.size()) {
        ++rejected_;
        if (span::captureOn()) {
            auto &t = span::tracker();
            t.reject(t.open(name_, toString(params_.mode), xfer_.now()),
                     xfer_.now());
        }
        return;
    }

    RegisterContext &rc = contexts_[ctx];
    if (!rc.keyValid || keyfield::keyOf(pkt.data) != rc.key) {
        ULDMA_TRACE_EVENT(name_, xfer_.now(), "dma_key_mismatch",
                          "ctx ", ctx);
        // "only if the provided key matches the key stored by the
        // operating system in the DMA engine" (paper §3.1).
        ++keyMismatch_;
        if (span::captureOn()) {
            auto &t = span::tracker();
            t.reject(t.open(name_, toString(params_.mode), xfer_.now()),
                     xfer_.now(), span::Outcome::KeyMismatch);
        }
        return;
    }

    // The paper's order: destination first, then source.  A store when
    // both are already valid begins a fresh argument pair.
    if (rc.srcValid && rc.dstValid) {
        if (span::captureOn() && rc.span != span::invalidSpan) {
            span::tracker().abort(rc.span, xfer_.now());
            rc.span = span::invalidSpan;
        }
        rc.resetArgs();
    }
    if (span::captureOn() && rc.span == span::invalidSpan) {
        rc.span = span::tracker().open(name_, toString(params_.mode),
                                       xfer_.now());
    }
    if (!rc.dstValid) {
        rc.dst = target;
        rc.dstValid = true;
    } else {
        rc.src = target;
        rc.srcValid = true;
    }
    rc.contributors.push_back(pkt.srcPid);
}

// ---------------------------------------------------------------------
// Repeated passing of arguments (paper §3.3).
// ---------------------------------------------------------------------

void
DmaEngine::fsmReset()
{
    if (fsmStep_ != 0) {
        ++fsmResets_;
        if (span::captureOn())
            span::tracker().abort(fsmSpan_, xfer_.now());
    }
    fsmStep_ = 0;
    fsmContributors_.clear();
    fsmSpan_ = span::invalidSpan;
}

void
DmaEngine::shadowRepeated(Packet &pkt, Addr target, unsigned ctx)
{
    fsmStepAccess(pkt, target, ctx);
}

void
DmaEngine::fsmStepAccess(Packet &pkt, Addr target, unsigned ctx)
{
    const bool is_store = pkt.isWrite();
    // Test-only fault injection (see DmaEngineParams::weakRecognizer):
    // skip the same-address checks of figure 7 and adopt the new
    // address instead of resetting.
    const bool weak = params_.weakRecognizer;

    // Two attempts: if the access mismatches mid-sequence, the engine
    // resets and the same access may begin a new sequence (this is what
    // makes the figure-5 interleaving possible against Repeated3).
    for (int attempt = 0; attempt < 2; ++attempt) {
        bool matched = false;
        // A sequence belongs to one shadow CONTEXT_ID: an access that
        // arrives through a different context window never continues
        // it, even when its stripped target address lines up.
        const bool ctx_ok = fsmStep_ == 0 || ctx == fsmCtx_;

        switch (params_.mode) {
          case EngineMode::Repeated3:
            // LOAD(src) STORE(dst) LOAD(src)
            switch (fsmStep_) {
              case 0:
                if (!is_store) {
                    fsmLoadAddr_ = target;
                    fsmCtx_ = ctx;
                    fsmContributors_.assign({pkt.srcPid});
                    if (span::captureOn()) {
                        fsmSpan_ = span::tracker().open(
                            name_, toString(params_.mode), xfer_.now());
                    }
                    fsmStep_ = 1;
                    pkt.data = dmastatus::pending;
                    matched = true;
                }
                break;
              case 1:
                if (ctx_ok && is_store) {
                    fsmStoreAddr_ = target;
                    fsmSize_ = pkt.data;
                    fsmContributors_.push_back(pkt.srcPid);
                    fsmStep_ = 2;
                    matched = true;
                }
                break;
              case 2:
                if (ctx_ok && !is_store &&
                    (weak || target == fsmLoadAddr_)) {
                    fsmContributors_.push_back(pkt.srcPid);
                    const TransferId id =
                        tryStartUser(fsmLoadAddr_, fsmStoreAddr_, fsmSize_,
                                     0, fsmContributors_, fsmSpan_);
                    pkt.data = id == invalidTransfer ? dmastatus::failure
                                                     : dmastatus::ok;
                    fsmStep_ = 0;
                    fsmContributors_.clear();
                    fsmSpan_ = span::invalidSpan;
                    matched = true;
                }
                break;
            }
            break;

          case EngineMode::Repeated4:
            // STORE(dst) LOAD(src) STORE(dst) LOAD(src)
            switch (fsmStep_) {
              case 0:
                if (is_store) {
                    fsmStoreAddr_ = target;
                    fsmSize_ = pkt.data;
                    fsmCtx_ = ctx;
                    fsmContributors_.assign({pkt.srcPid});
                    if (span::captureOn()) {
                        fsmSpan_ = span::tracker().open(
                            name_, toString(params_.mode), xfer_.now());
                    }
                    fsmStep_ = 1;
                    matched = true;
                }
                break;
              case 1:
                if (ctx_ok && !is_store) {
                    fsmLoadAddr_ = target;
                    fsmContributors_.push_back(pkt.srcPid);
                    fsmStep_ = 2;
                    pkt.data = dmastatus::pending;
                    matched = true;
                }
                break;
              case 2:
                if (ctx_ok && is_store &&
                    (weak || target == fsmStoreAddr_)) {
                    fsmStoreAddr_ = target;
                    fsmSize_ = pkt.data;
                    fsmContributors_.push_back(pkt.srcPid);
                    fsmStep_ = 3;
                    matched = true;
                }
                break;
              case 3:
                if (ctx_ok && !is_store &&
                    (weak || target == fsmLoadAddr_)) {
                    fsmContributors_.push_back(pkt.srcPid);
                    const TransferId id =
                        tryStartUser(fsmLoadAddr_, fsmStoreAddr_, fsmSize_,
                                     0, fsmContributors_, fsmSpan_);
                    pkt.data = id == invalidTransfer ? dmastatus::failure
                                                     : dmastatus::ok;
                    fsmStep_ = 0;
                    fsmContributors_.clear();
                    fsmSpan_ = span::invalidSpan;
                    matched = true;
                }
                break;
            }
            break;

          case EngineMode::Repeated5:
            // STORE(dst) LOAD(src) STORE(dst) LOAD(src) LOAD(dst)
            // (figure 7: addresses of 1,3,5 equal; of 2,4 equal)
            switch (fsmStep_) {
              case 0:
                if (is_store) {
                    fsmStoreAddr_ = target;
                    fsmSize_ = pkt.data;
                    fsmCtx_ = ctx;
                    fsmContributors_.assign({pkt.srcPid});
                    if (span::captureOn()) {
                        fsmSpan_ = span::tracker().open(
                            name_, toString(params_.mode), xfer_.now());
                    }
                    fsmStep_ = 1;
                    matched = true;
                }
                break;
              case 1:
                if (ctx_ok && !is_store) {
                    fsmLoadAddr_ = target;
                    fsmContributors_.push_back(pkt.srcPid);
                    fsmStep_ = 2;
                    pkt.data = dmastatus::pending;
                    matched = true;
                }
                break;
              case 2:
                if (ctx_ok && is_store &&
                    (weak || target == fsmStoreAddr_)) {
                    fsmStoreAddr_ = target;
                    fsmSize_ = pkt.data;
                    fsmContributors_.push_back(pkt.srcPid);
                    fsmStep_ = 3;
                    matched = true;
                }
                break;
              case 3:
                if (ctx_ok && !is_store &&
                    (weak || target == fsmLoadAddr_)) {
                    fsmLoadAddr_ = target;
                    fsmContributors_.push_back(pkt.srcPid);
                    fsmStep_ = 4;
                    pkt.data = dmastatus::pending;
                    matched = true;
                }
                break;
              case 4:
                if (ctx_ok && !is_store &&
                    (weak || target == fsmStoreAddr_)) {
                    fsmContributors_.push_back(pkt.srcPid);
                    const TransferId id =
                        tryStartUser(fsmLoadAddr_, fsmStoreAddr_, fsmSize_,
                                     0, fsmContributors_, fsmSpan_);
                    pkt.data = id == invalidTransfer ? dmastatus::failure
                                                     : dmastatus::ok;
                    fsmStep_ = 0;
                    fsmContributors_.clear();
                    fsmSpan_ = span::invalidSpan;
                    matched = true;
                }
                break;
            }
            break;

          default:
            ULDMA_PANIC("fsmStepAccess in non-repeated mode");
        }

        if (matched)
            return;

        // Mismatch: reset, and on the second pass let this access seed
        // a fresh sequence; if it cannot, report failure to loads.
        fsmReset();
        if (attempt == 1) {
            if (!is_store) {
                if (span::captureOn()) {
                    auto &t = span::tracker();
                    t.reject(t.open(name_, toString(params_.mode),
                                    xfer_.now()),
                             xfer_.now());
                }
                pkt.data = dmastatus::failure;
            }
            return;
        }
        if (!is_store)
            pkt.data = dmastatus::failure;
    }
}

// ---------------------------------------------------------------------
// Mapped-out pages (SHRIMP-1, paper §2.4).
// ---------------------------------------------------------------------

void
DmaEngine::shadowMappedOut(Packet &pkt, Addr target)
{
    if (!pkt.isWrite()) {
        pkt.data = dmastatus::failure;
        ++rejected_;
        if (span::captureOn()) {
            auto &t = span::tracker();
            t.reject(t.open(name_, toString(params_.mode), xfer_.now()),
                     xfer_.now());
        }
        return;
    }

    auto it = mapOutTable_.find(pageNumber(target));
    if (it == mapOutTable_.end()) {
        // No mapped-out counterpart: the single-access initiation has
        // nowhere to send the data (paper §2.4's restriction).
        ++rejected_;
        if (span::captureOn()) {
            auto &t = span::tracker();
            t.reject(t.open(name_, toString(params_.mode), xfer_.now()),
                     xfer_.now());
        }
        if (pkt.rmw)
            pkt.data = dmastatus::failure;
        return;
    }

    span::SpanId sid = span::invalidSpan;
    if (span::captureOn()) {
        sid = span::tracker().open(name_, toString(params_.mode),
                                   xfer_.now());
    }
    const Addr dst = it->second + pageOffset(target);
    const TransferId id =
        tryStartUser(target, dst, pkt.data, 0, {pkt.srcPid}, sid);
    mapOutTransfer_ = id;
    if (pkt.rmw) {
        pkt.data = id == invalidTransfer ? dmastatus::failure
                                         : dmastatus::ok;
    }
}

// ---------------------------------------------------------------------
// Descriptor ring (docs/RING.md).
// ---------------------------------------------------------------------

unsigned
DmaEngine::ringOutstanding(unsigned ctx) const
{
    ULDMA_ASSERT(ctx < rings_.size(), "context id out of range");
    return rings_[ctx].outstanding;
}

std::uint64_t
DmaEngine::ringRetired(unsigned ctx) const
{
    ULDMA_ASSERT(ctx < rings_.size(), "context id out of range");
    return rings_[ctx].retired;
}

bool
DmaEngine::ringConfigured(unsigned ctx) const
{
    ULDMA_ASSERT(ctx < rings_.size(), "context id out of range");
    return rings_[ctx].configured;
}

void
DmaEngine::ringDoorbell(Packet &pkt, unsigned ctx)
{
    RingContext &ring = rings_[ctx];

    if (!pkt.isWrite()) {
        // Drain-progress poll: total descriptors retired so far.
        pkt.data = ring.configured ? ring.retired : dmastatus::failure;
        return;
    }

    // The doorbell payload is key#context_id, exactly like a key-based
    // shadow store: the MMU mapping proves the page, the key proves
    // the ring.  A forged doorbell from a process that guessed the
    // page address but not the key dies here.
    const unsigned payload_ctx = keyfield::ctxOf(pkt.data);
    RegisterContext &rc = contexts_[ctx];
    if (payload_ctx != ctx || !rc.keyValid ||
        keyfield::keyOf(pkt.data) != rc.key) {
        ULDMA_TRACE_EVENT(name_, xfer_.now(), "ring_key_mismatch",
                          "ctx ", ctx);
        ++keyMismatch_;
        if (span::captureOn()) {
            auto &t = span::tracker();
            t.reject(t.open(name_, "ring", xfer_.now()), xfer_.now(),
                     span::Outcome::KeyMismatch);
        }
        return;
    }
    if (!ring.configured || localMemory_ == nullptr) {
        ++rejected_;
        if (span::captureOn()) {
            auto &t = span::tracker();
            t.reject(t.open(name_, "ring", xfer_.now()), xfer_.now());
        }
        return;
    }

    ++ringDoorbells_;
    ring.lastDoorbell = xfer_.now();
    ULDMA_TRACE_EVENT(name_, xfer_.now(), "ring_doorbell", "ctx ", ctx);
    ringDrain(ctx, pkt.srcPid);
    // Queueing depth the doorbell left behind: how many drained
    // descriptors are now waiting on the serialized pipeline.
    ringOccupancy_.sample(static_cast<double>(ring.outstanding));
}

void
DmaEngine::ringDrain(unsigned ctx, Pid doorbell_pid)
{
    ULDMA_PROF_SCOPE("dma.ring_drain");
    RingContext &ring = rings_[ctx];
    unsigned drained = 0;
    // One doorbell drains every armed descriptor: walk from head until
    // the first control word without the valid bit (the chain
    // terminator — a torn enqueue that wrote ctrl before the
    // arguments parks the drain there too, see ringConsume).
    while (drained < ring.slots && ringConsume(ctx, doorbell_pid))
        ++drained;
    // Two engine-side accesses per consumed descriptor: the descriptor
    // fetch and the control-word writeback.
    pendingExtraCycles_ += Cycles(2 * drained) * params_.accessCycles;
}

bool
DmaEngine::ringConsume(unsigned ctx, Pid doorbell_pid)
{
    RingContext &ring = rings_[ctx];
    // A descriptor parked on an IOMMU fault stalls the whole ring:
    // descriptors retire in FIFO order, and the parked one isn't done.
    if (ring.park.active)
        return false;
    const unsigned slot = ring.head;
    const Addr desc = ring.base + Addr(slot) * ringdesc::descBytes;
    if (desc + ringdesc::descBytes > localMemory_->size())
        return false;

    const std::uint64_t ctrl =
        localMemory_->readInt(desc + ringdesc::ctrlOff, 8);
    if (!(ctrl & ringdesc::ctrl::valid) ||
        (ctrl & (ringdesc::ctrl::done | ringdesc::ctrl::error)))
        return false;

    ++ringDescriptors_;
    ring.head = (ring.head + 1) % ring.slots;

    const Addr src = localMemory_->readInt(desc + ringdesc::srcOff, 8);
    const Addr dst = localMemory_->readInt(desc + ringdesc::dstOff, 8);
    const Addr size = localMemory_->readInt(desc + ringdesc::sizeOff, 8);

    if (ctrl & ringdesc::ctrl::fence) {
        // Fence/flush: completes once every transfer queued before it
        // has drained from the serialized pipeline.  No data moves.
        ++ringFences_;
        span::SpanId sid = span::invalidSpan;
        if (span::captureOn()) {
            sid = span::tracker().open(name_, "ring", xfer_.now());
            span::tracker().recognize(sid, xfer_.now(), ctx,
                                      /*via_kernel=*/false, 0);
            span::tracker().queue(sid, xfer_.now());
        }
        const Tick done_at = std::max(xfer_.busyUntil(), xfer_.now());
        eq_.scheduleLambda(
            name_ + ".ringFence", done_at,
            [this, ctx, slot, sid]() {
                ringRetire(ctx, slot, dmastatus::ok,
                           ringdesc::ctrl::done);
                if (span::captureOn())
                    span::tracker().complete(sid, xfer_.now());
                // A fence is a flush point: always interrupt under the
                // coalescing policy, never leave one batched up.
                RingContext &r = rings_[ctx];
                if (r.policy == ringdesc::policyCoalesce &&
                    ringCompletionHandler_) {
                    r.coalesceCount = 0;
                    ++ringInterrupts_;
                    ringCompletionHandler_(ctx);
                }
            },
            Event::DevicePrio);
        return true;
    }

    // IOMMU mode: descriptors carry user virtual addresses and may
    // span pages; translation (not the frame table) is the protection.
    if (iommu_)
        return ringConsumeIommu(ctx, slot, src, dst, size, doorbell_pid);

    span::SpanId sid = span::invalidSpan;
    if (span::captureOn())
        sid = span::tracker().open(name_, "ring", xfer_.now());

    // The kernel-programmed frame table is the ring's protection: a
    // descriptor is only as trusted as the rights the OS granted the
    // context at setup time.  weakRing (model-checker fault injection)
    // turns this into the vulnerable "trust the descriptor" design.
    if (!params_.weakRing &&
        (!ringFrameAllowed(ring, src, size) ||
         !ringFrameAllowed(ring, dst, size))) {
        ++ringRejects_;
        ++rejected_;
        if (span::captureOn())
            span::tracker().reject(sid, xfer_.now());
        ULDMA_TRACE_EVENT(name_, xfer_.now(), "ring_reject",
                          "ctx ", ctx, " unauthorized frame");
        ringRetire(ctx, slot, dmastatus::failure, ringdesc::ctrl::error);
        return true;
    }

    const TransferId id = tryStartUser(
        src, dst, size, ctx, {doorbell_pid}, sid, /*via_ring=*/true,
        [this, ctx, slot]() {
            ringRetire(ctx, slot, dmastatus::ok, ringdesc::ctrl::done);
            ringTransferDone(ctx, slot);
        });
    if (id == invalidTransfer) {
        ++ringRejects_;
        ringRetire(ctx, slot, dmastatus::failure, ringdesc::ctrl::error);
        return true;
    }
    ++ring.outstanding;
    return true;
}

bool
DmaEngine::ringFrameAllowed(const RingContext &ring, Addr addr,
                            Addr size) const
{
    if (size == 0)
        return false;
    for (const RingContext::Frame &frame : ring.frames) {
        if (addr >= frame.base && addr + size <= frame.limit)
            return true;
    }
    return false;
}

void
DmaEngine::ringRetire(unsigned ctx, unsigned slot, std::uint64_t status,
                      std::uint64_t ctrl_bits)
{
    RingContext &ring = rings_[ctx];
    ++ring.retired;
    if (status == dmastatus::ok)
        doorbellToRetireUs_.sample(
            ticksToUs(xfer_.now() - ring.lastDoorbell));
    const Addr desc = ring.base + Addr(slot) * ringdesc::descBytes;
    const Addr cpl = ring.cplBase + Addr(slot) * ringdesc::cplBytes;
    const std::uint64_t ctrl =
        localMemory_->readInt(desc + ringdesc::ctrlOff, 8);
    // writeInt fires the memory's write observers, so a polling CPU
    // sees the completion record coherently.
    localMemory_->writeInt(desc + ringdesc::ctrlOff, ctrl | ctrl_bits, 8);
    localMemory_->writeInt(cpl, status == dmastatus::ok
                                    ? std::uint64_t(1)
                                    : dmastatus::failure, 8);
}

void
DmaEngine::ringTransferDone(unsigned ctx, unsigned slot)
{
    (void)slot;
    RingContext &ring = rings_[ctx];
    if (ring.outstanding > 0)
        --ring.outstanding;
    if (ring.policy != ringdesc::policyCoalesce ||
        !ringCompletionHandler_)
        return;
    // Interrupt coalescing: fire every N completions, and always when
    // the ring goes idle so no completion is ever announced late.
    ++ring.coalesceCount;
    if (ring.coalesceCount >= ring.coalesce || ring.outstanding == 0) {
        ring.coalesceCount = 0;
        ++ringInterrupts_;
        ringCompletionHandler_(ctx);
    }
}

// ---------------------------------------------------------------------
// IOMMU scatter-gather path (docs/IOMMU.md).
// ---------------------------------------------------------------------

bool
DmaEngine::ringConsumeIommu(unsigned ctx, unsigned slot, Addr src,
                            Addr dst, Addr size, Pid doorbell_pid)
{
    RingContext &ring = rings_[ctx];
    if (size == 0 || size > params_.iommu.maxSgBytes) {
        ++ringRejects_;
        ++rejected_;
        if (span::captureOn()) {
            auto &t = span::tracker();
            t.reject(t.open(name_, "ring", xfer_.now()), xfer_.now());
        }
        ULDMA_TRACE_EVENT(name_, xfer_.now(), "ring_reject",
                          "ctx ", ctx, " bad sg size ", size);
        ringRetire(ctx, slot, dmastatus::failure, ringdesc::ctrl::error);
        return true;
    }
    // Descriptor-level occupancy: one descriptor in flight no matter
    // how many per-page segments it scatters into.
    ring.sg[slot] = RingContext::SlotSg{};
    ++ring.outstanding;
    return ringIssueSegments(ctx, slot, src, dst, size, /*done=*/0,
                             doorbell_pid);
}

bool
DmaEngine::ringIssueSegments(unsigned ctx, unsigned slot, Addr src,
                             Addr dst, Addr size, Addr done, Pid pid)
{
    ULDMA_PROF_SCOPE("dma.iommu_sg");
    RingContext &ring = rings_[ctx];
    RingContext::SlotSg &sg = ring.sg[slot];
    sg.issuing = true;
    while (done < size) {
        // Segments never cross a page at either endpoint: each one is
        // a plain single-page user transfer once translated.
        const Addr seg = std::min(
            {size - done, pageSize - pageOffset(src + done),
             pageSize - pageOffset(dst + done), params_.userMaxTransfer});
        const Addr sv = src + done;
        const Addr dv = dst + done;
        Iommu::Result rs = iommu_->translate(ctx, sv, Rights::Read);
        Iommu::Result rd = iommu_->translate(ctx, dv, Rights::Write);
        // Translation latency is charged to the access that triggered
        // the drain (or accumulates onto the next engine access after
        // a trap resume) — deterministic either way.
        pendingExtraCycles_ += rs.cycles + rd.cycles;
        if (!rs.ok() || !rd.ok()) {
            const Addr fault_iova = !rs.ok() ? sv : dv;
            const bool fault_write = rs.ok();
            ++iommuTransFaults_;
            ULDMA_TRACE_EVENT(name_, xfer_.now(), "iommu_fault",
                              "ctx ", ctx, " iova 0x", std::hex,
                              fault_iova);
            if (params_.weakIommu) {
                // Fault injection (model checker): trust the
                // descriptor's raw address as physical — the bypass an
                // IOMMU exists to rule out.
                ++iommuBypasses_;
                if (!rs.ok())
                    rs.paddr = sv;
                if (!rd.ok())
                    rd.paddr = dv;
            } else if (params_.iommu.faultPolicy ==
                           IommuFaultPolicy::Trap &&
                       iommuFaultHandler_) {
                // Park the descriptor mid-transfer and ask the kernel
                // to repair the mapping; iommuResume continues from
                // byte `done` once the fix-up cost has elapsed.
                sg.issuing = false;
                ring.park = RingContext::IommuPark{
                    true, slot, src, dst, size, done, pid, fault_iova,
                    fault_write};
                ++iommuTraps_;
                scheduleIommuFaultFixup(ctx);
                return false;
            } else {
                sg.error = true;
                ++iommuAborts_;
                ++ringRejects_;
                break;
            }
        }
        span::SpanId sid = span::invalidSpan;
        if (span::captureOn()) {
            sid = span::tracker().open(name_, "ring", xfer_.now());
            // Stamp the modeled end of translation (the cycles above
            // are charged to the triggering access, not simulated
            // inline), so the span's translation phase carries the
            // IOTLB hit-vs-walk cost.
            span::tracker().translated(
                sid, xfer_.now() + xfer_.clockDomain().cyclesToTicks(
                                       rs.cycles + rd.cycles));
        }
        const TransferId id = tryStartUser(
            rs.paddr, rd.paddr, seg, ctx, {pid}, sid, /*via_ring=*/true,
            [this, ctx, slot]() { ringSegmentDone(ctx, slot); });
        if (id == invalidTransfer) {
            sg.error = true;
            break;
        }
        ++iommuSegments_;
        ++sg.remaining;
        done += seg;
    }
    sg.issuing = false;
    maybeFinishSgSlot(ctx, slot);
    return true;
}

void
DmaEngine::ringSegmentDone(unsigned ctx, unsigned slot)
{
    RingContext &ring = rings_[ctx];
    auto it = ring.sg.find(slot);
    if (it == ring.sg.end())
        return;
    if (it->second.remaining > 0)
        --it->second.remaining;
    maybeFinishSgSlot(ctx, slot);
}

void
DmaEngine::maybeFinishSgSlot(unsigned ctx, unsigned slot)
{
    RingContext &ring = rings_[ctx];
    auto it = ring.sg.find(slot);
    if (it == ring.sg.end())
        return;
    const RingContext::SlotSg &sg = it->second;
    if (sg.remaining > 0 || sg.issuing)
        return;
    // Parked mid-descriptor: earlier segments may drain while the
    // kernel repairs the mapping, but the slot retires only after the
    // resumed tail finishes.
    if (ring.park.active && ring.park.slot == slot)
        return;
    const bool err = sg.error;
    ring.sg.erase(it);
    ringRetire(ctx, slot, err ? dmastatus::failure : dmastatus::ok,
               err ? ringdesc::ctrl::error : ringdesc::ctrl::done);
    ringTransferDone(ctx, slot);
}

void
DmaEngine::scheduleIommuFaultFixup(unsigned ctx)
{
    // Deferred past the current bus access: the kernel's fix-up
    // programs the engine over the bus and must not reenter the
    // access being processed.
    const Tick when = std::max(xfer_.busyUntil(), xfer_.now());
    eq_.scheduleLambda(
        name_ + ".iommuFixup", when,
        [this, ctx]() {
            RingContext &ring = rings_[ctx];
            if (!ring.park.active)
                return;
            std::uint64_t cost = ~std::uint64_t(0);
            if (iommuFaultHandler_)
                cost = iommuFaultHandler_(ctx, ring.park.faultIova,
                                          ring.park.faultWrite);
            if (cost == ~std::uint64_t(0)) {
                abortParked(ctx);
                return;
            }
            eq_.scheduleLambda(
                name_ + ".iommuResume", xfer_.now() + cost,
                [this, ctx]() { iommuResume(ctx); }, Event::DevicePrio);
        },
        Event::DevicePrio);
}

void
DmaEngine::abortParked(unsigned ctx)
{
    RingContext &ring = rings_[ctx];
    if (!ring.park.active)
        return;
    const unsigned slot = ring.park.slot;
    const Pid pid = ring.park.pid;
    ring.park = RingContext::IommuPark{};
    ring.sg[slot].error = true;
    ++iommuAborts_;
    ++ringRejects_;
    ULDMA_TRACE_EVENT(name_, xfer_.now(), "iommu_abort", "ctx ", ctx,
                      " slot ", slot);
    maybeFinishSgSlot(ctx, slot);
    // Descriptors enqueued behind the aborted one drain now.
    ringDrain(ctx, pid);
}

void
DmaEngine::iommuResume(unsigned ctx)
{
    RingContext &ring = rings_[ctx];
    if (!ring.park.active)
        return;
    const RingContext::IommuPark park = ring.park;
    ring.park = RingContext::IommuPark{};
    ++iommuResumes_;
    ULDMA_TRACE_EVENT(name_, xfer_.now(), "iommu_resume", "ctx ", ctx,
                      " slot ", park.slot, " done ", park.done);
    if (ringIssueSegments(ctx, park.slot, park.src, park.dst, park.size,
                          park.done, park.pid)) {
        // Drain descriptors that queued up behind the parked one.
        ringDrain(ctx, park.pid);
    }
}

// ---------------------------------------------------------------------
// Capability-gated initiation (docs/CAPABILITIES.md).
// ---------------------------------------------------------------------

Addr
DmaEngine::capPageAddr(unsigned slot) const
{
    ULDMA_ASSERT(cap_ && slot < params_.cap.numSlots,
                 name_, ": capPageAddr on invalid slot ", slot);
    return params_.capPagesBase + Addr(slot) * pageSize;
}

std::uint64_t
DmaEngine::capSlotStatus(unsigned slot) const
{
    ULDMA_ASSERT(cap_ && slot < capPres_.size(),
                 name_, ": capSlotStatus on invalid slot ", slot);
    return capPres_[slot].status;
}

void
DmaEngine::capManage(Addr offset, std::uint64_t value)
{
    if (!cap_) {
        capLastStatus_ = dmastatus::failure;
        return;
    }
    const unsigned slot = static_cast<unsigned>(capSlotSelect_);
    switch (offset) {
      case kregs::capSlotSelect:
        capSlotSelect_ = value;
        capLastStatus_ = value < params_.cap.numSlots ? dmastatus::ok
                                                      : dmastatus::failure;
        break;
      case kregs::capSpanBase:
        capSpanBaseStage_ = value;
        capLastStatus_ = dmastatus::ok;
        break;
      case kregs::capSpanLimit:
        capLastStatus_ = cap_->addSpan(slot, capSpanBaseStage_, value)
                             ? dmastatus::ok
                             : dmastatus::failure;
        break;
      case kregs::capConfig:
        capLastStatus_ = cap_->configure(slot, capconfig::rightsOf(value),
                                         capconfig::rateClassOf(value))
                             ? dmastatus::ok
                             : dmastatus::failure;
        break;
      case kregs::capSecret:
        capLastStatus_ = cap_->install(slot, value) ? dmastatus::ok
                                                    : dmastatus::failure;
        break;
      case kregs::capOp:
        if (value == capop::revoke) {
            // Bump the generation first so any presentation racing the
            // revocation already fails the generation check, then fail
            // closed everything queued or in flight for the slot.
            capLastStatus_ = cap_->revoke(slot) ? dmastatus::ok
                                                : dmastatus::failure;
            capCancelSlot(slot);
        } else if (value == capop::invalidate) {
            capCancelSlot(slot);
            capLastStatus_ = cap_->invalidate(slot) ? dmastatus::ok
                                                    : dmastatus::failure;
        } else {
            capLastStatus_ = dmastatus::failure;
        }
        break;
      default:
        capLastStatus_ = dmastatus::failure;
    }
}

void
DmaEngine::accessCapPage(Packet &pkt, Addr window_offset)
{
    const unsigned slot = static_cast<unsigned>(pageNumber(window_offset));
    const Addr reg = pageOffset(window_offset);
    ULDMA_ASSERT(slot < capPres_.size(),
                 name_, ": cap window decode out of range");
    CapPresentation &p = capPres_[slot];

    if (pkt.isWrite()) {
        switch (reg) {
          case cappage::src:
            p.src = pkt.data;
            p.contributors.push_back(pkt.srcPid);
            break;
          case cappage::dst:
            p.dst = pkt.data;
            p.contributors.push_back(pkt.srcPid);
            break;
          case cappage::size:
            p.size = pkt.data;
            p.contributors.push_back(pkt.srcPid);
            break;
          case cappage::word:
            p.contributors.push_back(pkt.srcPid);
            capCommit(slot, pkt.data);
            break;
          default:
            ULDMA_WARN(name_, ": write to unknown cap page offset 0x",
                       std::hex, reg);
        }
        return;
    }

    // Loads: the capword offset reads back the presentation status
    // (ok / pending / failure); everything else reads as zero so user
    // code cannot use the page to spy on another tenant's arguments.
    pkt.data = reg == cappage::word ? p.status : 0;
}

void
DmaEngine::capCommit(unsigned slot, std::uint64_t capword)
{
    ++capPresentations_;
    // The table walk (secret compare + span scan) costs a fixed number
    // of engine cycles, charged to the presenting store like the FSM
    // decode cost.
    pendingExtraCycles_ += params_.cap.checkCycles;

    CapPresentation &p = capPres_[slot];
    span::SpanId sid = span::invalidSpan;
    if (span::captureOn())
        sid = span::tracker().open(name_, "cap", xfer_.now());

    CapFault fault = CapFault::None;
    if (!params_.weakCap)
        fault = cap_->check(slot, capword, p.src, p.dst, p.size);

    // Even the weakened engine cannot move bytes through endpoints the
    // machine does not have (the transfer engine asserts on them), and
    // the single-pipeline data mover keeps the paper's one-page bound.
    const bool args_ok =
        p.size != 0 && p.size <= params_.userMaxTransfer &&
        pageNumber(p.src) == pageNumber(p.src + p.size - 1) &&
        pageNumber(p.dst) == pageNumber(p.dst + p.size - 1) &&
        backend_.validEndpoint(p.src, p.size) &&
        backend_.validEndpoint(p.dst, p.size);

    if (fault != CapFault::None || !args_ok) {
        ++capRejects_;
        ++rejected_;
        p.status = dmastatus::failure;
        p.contributors.clear();
        if (span::captureOn())
            span::tracker().reject(sid, xfer_.now());
        ULDMA_TRACE_EVENT(name_, xfer_.now(), "cap_reject",
                          "slot ", slot, " fault ",
                          static_cast<int>(fault));
        return;
    }

    if (span::captureOn())
        span::tracker().recognize(sid, xfer_.now(), 0,
                                  /*via_kernel=*/false, p.size);

    const unsigned rate = cap_->valid(slot) ? cap_->rateClass(slot) : 0;
    CapRequest req;
    req.slot = slot;
    req.src = p.src;
    req.dst = p.dst;
    req.size = p.size;
    req.enqueued = xfer_.now();
    req.spanId = sid;
    req.contributors = p.contributors;
    capArbiter_->enqueue(rate, std::move(req));

    p.status = dmastatus::pending;
    p.contributors.clear();
    ULDMA_TRACE_EVENT(name_, xfer_.now(), "cap_accept",
                      "slot ", slot, " rate ", rate);
    capDispatch();
}

void
DmaEngine::capDispatch()
{
    if (capActiveXfer_ != invalidTransfer)
        return;
    CapRequest req;
    if (!capArbiter_->dispatch(xfer_.now(), req))
        return;

    capActiveSlot_ = req.slot;
    capActiveSize_ = req.size;
    capActiveCancelled_ = false;

    ++capStarts_;
    ++started_;
    initiations_.push_back(InitiationRecord{
        xfer_.now(), params_.mode, req.src, req.dst, req.size, 0,
        /*viaKernel=*/false, /*viaRing=*/false, req.contributors,
        /*viaCap=*/true, req.slot});
    ULDMA_TRACE_EVENT(name_, xfer_.now(), "cap_start",
                      "slot ", req.slot, " size ", req.size);

    capActiveXfer_ = xfer_.start(req.src, req.dst, req.size,
                                 [this]() { capTransferDone(); }, 0,
                                 req.spanId);
}

void
DmaEngine::capTransferDone()
{
    CapPresentation &p = capPres_[capActiveSlot_];
    if (capActiveCancelled_) {
        p.status = dmastatus::failure;
    } else {
        p.status = dmastatus::ok;
        cap_->recordBytes(capActiveSlot_, capActiveSize_);
    }
    capActiveXfer_ = invalidTransfer;
    capActiveCancelled_ = false;
    capDispatch();
}

void
DmaEngine::capCancelSlot(unsigned slot)
{
    if (!capArbiter_)
        return;
    // Queued presentations for the slot fail closed.
    for (const CapRequest &r : capArbiter_->purgeSlot(slot)) {
        ++capCancels_;
        capPres_[r.slot].status = dmastatus::failure;
        if (span::captureOn())
            span::tracker().abort(r.spanId, xfer_.now());
    }
    // A transfer already on the bus keeps the pipeline busy but never
    // delivers its payload (docs/CAPABILITIES.md fail-closed rule).
    if (capActiveXfer_ != invalidTransfer && capActiveSlot_ == slot &&
        xfer_.cancel(capActiveXfer_)) {
        capActiveCancelled_ = true;
        ++capCancels_;
        ULDMA_TRACE_EVENT(name_, xfer_.now(), "cap_cancel_inflight",
                          "slot ", slot);
    }
}

// ---------------------------------------------------------------------
// Common start path.
// ---------------------------------------------------------------------

TransferId
DmaEngine::tryStartUser(Addr src, Addr dst, Addr size, unsigned ctx,
                        const std::vector<Pid> &contributors,
                        span::SpanId span, bool via_ring,
                        std::function<void()> on_complete)
{
    ULDMA_PROF_SCOPE("dma.initiate");
    if (size == 0 || size > params_.userMaxTransfer) {
        ++rejected_;
        if (span::captureOn())
            span::tracker().reject(span, xfer_.now());
        ULDMA_TRACE_EVENT(name_, xfer_.now(), "dma_reject",
                          "bad size ", size);
        return invalidTransfer;
    }
    // The shadow mapping only proves access rights to a single page;
    // a user transfer must therefore stay within one page at both
    // endpoints (the kernel channel has no such restriction).
    if (pageNumber(src) != pageNumber(src + size - 1) ||
        pageNumber(dst) != pageNumber(dst + size - 1)) {
        ++crossPageRejects_;
        ++rejected_;
        if (span::captureOn())
            span::tracker().reject(span, xfer_.now());
        ULDMA_TRACE_EVENT(name_, xfer_.now(), "dma_reject",
                          "cross-page, size ", size);
        return invalidTransfer;
    }
    if (!backend_.validEndpoint(src, size) ||
        !backend_.validEndpoint(dst, size)) {
        ++rejected_;
        if (span::captureOn())
            span::tracker().reject(span, xfer_.now());
        return invalidTransfer;
    }

    if (span::captureOn())
        span::tracker().recognize(span, xfer_.now(), ctx,
                                  /*via_kernel=*/false, size);

    const TransferId id =
        xfer_.start(src, dst, size, std::move(on_complete), 0, span);
    ++started_;
    ULDMA_TRACE_EVENT(name_, xfer_.now(), "dma_start",
                      "ctx ", ctx, " size ", size);
    initiations_.push_back(InitiationRecord{
        xfer_.now(), params_.mode, src, dst, size, ctx,
        /*viaKernel=*/false, via_ring, contributors});

    ULDMA_TRACE("Dma", xfer_.now(), name_, ": user DMA started 0x",
                std::hex, src, " -> 0x", dst, std::dec, " size ", size,
                " mode ", toString(params_.mode));
    return id;
}

// ---------------------------------------------------------------------
// State hashing for the model checker.
// ---------------------------------------------------------------------

namespace {

/** 64-bit FNV-1a accumulator. */
struct Fnv1a
{
    std::uint64_t h = 14695981039346656037ULL;

    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ULL;
        }
    }
};

} // namespace

std::uint64_t
DmaEngine::stateHash() const
{
    Fnv1a f;
    f.mix(static_cast<std::uint64_t>(params_.mode));
    f.mix(osTag_);

    // Repeated-passing FSM.
    f.mix(fsmStep_);
    f.mix(fsmCtx_);
    f.mix(fsmStoreAddr_);
    f.mix(fsmLoadAddr_);
    f.mix(fsmSize_);
    f.mix(fsmContributors_.size());
    for (Pid p : fsmContributors_)
        f.mix(p);

    // ShadowPair latches.
    for (const PairLatch &l : pairLatch_) {
        f.mix(l.valid);
        f.mix(l.dst);
        f.mix(l.size);
        f.mix(l.osTag);
        f.mix(l.contributor);
    }

    // Key-based register contexts.  The secret keys are deliberately
    // excluded: they differ across machines but never across two
    // re-executions of the same schedule prefix, and hashing them
    // would leak them into repro files.
    for (const RegisterContext &c : contexts_) {
        f.mix(c.keyValid);
        f.mix(c.src);
        f.mix(c.dst);
        f.mix(c.size);
        f.mix(c.srcValid);
        f.mix(c.dstValid);
        f.mix(c.sizeValid);
        f.mix(c.transfer != invalidTransfer);
        f.mix(c.contributors.size());
        for (Pid p : c.contributors)
            f.mix(p);
    }

    // Descriptor rings (ring bases and frame tables are OS-programmed
    // and protocol-visible; nothing here is secret like the keys).
    for (const RingContext &r : rings_) {
        f.mix(r.configured);
        f.mix(r.base);
        f.mix(r.cplBase);
        f.mix(r.slots);
        f.mix(r.policy);
        f.mix(r.coalesce);
        f.mix(r.head);
        f.mix(r.retired);
        f.mix(r.outstanding);
        f.mix(r.coalesceCount);
        f.mix(r.frames.size());
        for (const RingContext::Frame &frame : r.frames) {
            f.mix(frame.base);
            f.mix(frame.limit);
        }
    }

    // IOMMU: translation tables, pins, IOTLB and scatter-gather
    // progress.  Mixed only when the unit exists, so non-IOMMU hashes
    // are unchanged from the pre-IOMMU model.
    if (iommu_) {
        f.mix(iommu_->stateHash());
        for (const RingContext &r : rings_) {
            f.mix(r.sg.size());
            f.mix(r.park.active);
            f.mix(r.park.slot);
            f.mix(r.park.done);
        }
        f.mix(iommuSegments_.value());
        f.mix(iommuTransFaults_.value());
        f.mix(iommuTraps_.value());
        f.mix(iommuResumes_.value());
        f.mix(iommuAborts_.value());
        f.mix(iommuBypasses_.value());
    }

    // Capability path: table generations/spans, arbiter queue shape,
    // per-slot presentation latches and the active-transfer latch.
    // Mixed only when the family exists, so non-cap hashes are
    // unchanged from the pre-capability model.
    if (cap_) {
        f.mix(cap_->stateHash());
        f.mix(capArbiter_->stateHash());
        for (const CapPresentation &p : capPres_) {
            f.mix(p.src);
            f.mix(p.dst);
            f.mix(p.size);
            f.mix(p.status);
            f.mix(p.contributors.size());
            for (Pid q : p.contributors)
                f.mix(q);
        }
        f.mix(capActiveXfer_ != invalidTransfer);
        f.mix(capActiveSlot_);
        f.mix(capActiveSize_);
        f.mix(capActiveCancelled_);
        f.mix(capPresentations_.value());
        f.mix(capRejects_.value());
        f.mix(capStarts_.value());
        f.mix(capCancels_.value());
    }

    // Kernel channel.
    f.mix(kSrc_);
    f.mix(kDst_);
    f.mix(kSize_);
    f.mix(kFailed_);

    // Event counters: two states that took different numbers of
    // starts/rejects to reach are not interchangeable for exploration.
    f.mix(started_.value());
    f.mix(rejected_.value());
    f.mix(keyMismatch_.value());
    f.mix(fsmResets_.value());
    f.mix(ringDoorbells_.value());
    f.mix(ringDescriptors_.value());
    f.mix(ringRejects_.value());
    f.mix(ringFences_.value());
    return f.h;
}

} // namespace uldma
