#include "dma/transfer_engine.hh"

#include <algorithm>

#include "prof/profiler.hh"
#include "sim/ticks.hh"
#include "sim/trace.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"

namespace uldma {

TransferEngine::TransferEngine(EventQueue &eq, std::string name,
                               const ClockDomain &bus_clock,
                               const TransferTiming &timing,
                               TransferBackend &backend)
    : Clocked(eq, bus_clock), name_(std::move(name)), timing_(timing),
      backend_(backend), statsGroup_(name_),
      latencyUs_(0.0, 100.0, 100)
{
    ULDMA_ASSERT(timing_.bytesPerBusCycle > 0, "zero DMA bandwidth");
    statsGroup_.addScalar("transfers_started", &started_,
                          "DMA transfers begun");
    statsGroup_.addScalar("transfers_completed", &completed_,
                          "DMA transfers finished");
    statsGroup_.addScalar("bytes_moved", &bytes_, "payload bytes moved");
    statsGroup_.addScalar("busy_ticks", &busyTicks_,
                          "ticks the pipeline was committed busy");
    statsGroup_.addHistogram("latency_us", &latencyUs_,
                             "transfer latency, queue to delivery (us)");
    statsGroup_.addAverage("queue_wait_us", &queueWaitUs_,
                           "time a transfer waited for the pipeline (us)");
}

TransferId
TransferEngine::start(Addr src, Addr dst, Addr size,
                      std::function<void()> on_complete, Tick not_before,
                      span::SpanId span)
{
    ULDMA_ASSERT(backend_.validEndpoint(src, size),
                 name_, ": invalid transfer source 0x", std::hex, src);
    ULDMA_ASSERT(backend_.validEndpoint(dst, size),
                 name_, ": invalid transfer destination 0x", std::hex, dst);

    ULDMA_PROF_SCOPE("dma.transfer_start");

    ++started_;
    bytes_ += size;

    const Tick begin = std::max({now(), busyUntil_, not_before});
    const Cycles busy_cycles =
        timing_.startupCycles + divCeil(size, timing_.bytesPerBusCycle);
    const Tick end = begin + clockDomain().cyclesToTicks(busy_cycles);
    busyUntil_ = end;
    // Busy windows are serialized (begin >= the previous end), so the
    // accumulated width is exact pipeline-occupied time.
    busyTicks_ += end - begin;
    queueWaitUs_.sample(ticksToUs(begin - std::max(now(), not_before)));

    const TransferId id = nextId_++;
    flights_.push_back(Flight{id, size, begin, end});

    ULDMA_TRACE("Dma", now(), name_, ": transfer ", id, " 0x", std::hex,
                src, " -> 0x", dst, std::dec, " size ", size,
                " completes at ", end);
    ULDMA_TRACE_EVENT(name_, now(), "xfer_start",
                      "id ", id, " size ", size);

    if (span::captureOn()) {
        auto &tracker = span::tracker();
        tracker.queue(span, now());
        tracker.busWindow(span, begin, end);
        tracker.setRemote(span, backend_.remoteEndpoint(src) ||
                                backend_.remoteEndpoint(dst));
    }

    eventq().scheduleLambda(
        name_ + ".complete", end,
        [this, id, src, dst, size, span, queued_at = now(),
         cb = std::move(on_complete)]() {
            ULDMA_PROF_SCOPE("dma.transfer_complete");
            bool cancelled = false;
            for (const Flight &f : flights_) {
                if (f.id == id) {
                    cancelled = f.cancelled;
                    break;
                }
            }
            const Tick extra =
                cancelled ? 0 : backend_.moveBytes(src, dst, size);
            ++completed_;
            if (cancelled) {
                ++cancelledCount_;
                if (span::captureOn())
                    span::tracker().abort(span, now());
            } else {
                latencyUs_.sample(ticksToUs(now() + extra - queued_at));
                if (span::captureOn())
                    span::tracker().complete(span, now() + extra);
            }
            ULDMA_TRACE_EVENT(name_, now(), "xfer_complete",
                              "id ", id, " size ", size);
            for (Flight &f : flights_) {
                if (f.id == id) {
                    f.applied = true;
                    break;
                }
            }
            // Garbage-collect old applied flights.
            if (flights_.size() > 64) {
                flights_.erase(
                    std::remove_if(flights_.begin(), flights_.end(),
                                   [](const Flight &f) {
                                       return f.applied;
                                   }),
                    flights_.end());
            }
            if (cb) {
                if (extra == 0) {
                    cb();
                } else {
                    eventq().scheduleLambda(name_ + ".deliver",
                                            now() + extra, cb);
                }
            }
        },
        Event::DevicePrio);

    return id;
}

Addr
TransferEngine::remaining(TransferId id) const
{
    for (const Flight &f : flights_) {
        if (f.id != id)
            continue;
        const Tick t = now();
        if (t >= f.endTick)
            return 0;
        if (t <= f.startTick)
            return f.size;
        // Linear interpolation across the active window.
        const double frac = static_cast<double>(t - f.startTick) /
                            static_cast<double>(f.endTick - f.startTick);
        const Addr moved = static_cast<Addr>(frac *
                                             static_cast<double>(f.size));
        return f.size - std::min(moved, f.size);
    }
    return 0;
}

bool
TransferEngine::cancel(TransferId id)
{
    for (Flight &f : flights_) {
        if (f.id != id)
            continue;
        if (f.applied)
            return false;
        f.cancelled = true;
        ULDMA_TRACE("Dma", now(), name_, ": transfer ", id,
                    " cancelled (payload suppressed)");
        return true;
    }
    return false;
}

bool
TransferEngine::complete(TransferId id) const
{
    for (const Flight &f : flights_) {
        if (f.id == id)
            return now() >= f.endTick;
    }
    return true;
}

} // namespace uldma
