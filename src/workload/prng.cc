#include "workload/prng.hh"

#include <cmath>

#include "util/logging.hh"

namespace uldma::workload {

namespace {

/** The splitmix64 finalizer: a strong 64-bit mixer. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

std::uint64_t
streamSeed(std::uint64_t seed, std::uint64_t stream, SeedPurpose purpose)
{
    return mix64(mix64(mix64(seed) ^ stream) ^
                 static_cast<std::uint64_t>(purpose));
}

Addr
sampleSize(const SizeDist &dist, Random &rng)
{
    switch (dist.kind) {
      case SizeDist::Kind::Fixed:
        return dist.fixedBytes;
      case SizeDist::Kind::Uniform:
        return rng.inRange(dist.minBytes, dist.maxBytes);
      case SizeDist::Kind::Zipf: {
        ULDMA_ASSERT(!dist.zipfSizes.empty(),
                     "zipf size distribution with no buckets");
        // Bucket k has weight 1/(k+1)^s; walk the cumulative weights.
        double total = 0.0;
        for (std::size_t k = 0; k < dist.zipfSizes.size(); ++k)
            total += 1.0 / std::pow(double(k + 1), dist.zipfExponent);
        double u = rng.nextDouble() * total;
        for (std::size_t k = 0; k < dist.zipfSizes.size(); ++k) {
            u -= 1.0 / std::pow(double(k + 1), dist.zipfExponent);
            if (u < 0.0)
                return dist.zipfSizes[k];
        }
        return dist.zipfSizes.back();
      }
    }
    return dist.fixedBytes;
}

std::uint64_t
sampleIntervalUs(const IntervalDist &dist, Random &rng)
{
    switch (dist.kind) {
      case IntervalDist::Kind::Fixed:
        return dist.fixedUs;
      case IntervalDist::Kind::Uniform:
        return rng.inRange(dist.minUs, dist.maxUs);
    }
    return dist.fixedUs;
}

double
meanSize(const SizeDist &dist)
{
    switch (dist.kind) {
      case SizeDist::Kind::Fixed:
        return double(dist.fixedBytes);
      case SizeDist::Kind::Uniform:
        return (double(dist.minBytes) + double(dist.maxBytes)) / 2.0;
      case SizeDist::Kind::Zipf: {
        double total = 0.0, weighted = 0.0;
        for (std::size_t k = 0; k < dist.zipfSizes.size(); ++k) {
            const double w =
                1.0 / std::pow(double(k + 1), dist.zipfExponent);
            total += w;
            weighted += w * double(dist.zipfSizes[k]);
        }
        return total > 0.0 ? weighted / total : 0.0;
      }
    }
    return 0.0;
}

} // namespace uldma::workload
