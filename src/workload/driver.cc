#include "workload/driver.hh"

#include <algorithm>
#include <iostream>

#include "prof/profiler.hh"
#include "sim/span.hh"
#include "util/logging.hh"
#include "workload/prng.hh"

namespace uldma::workload {

namespace {

BusParams
busFor(const std::string &name)
{
    if (name == "pci33")
        return BusParams::pci33();
    if (name == "pci66")
        return BusParams::pci66();
    ULDMA_ASSERT(name == "tc", "unknown bus '", name, "'");
    return BusParams::turboChannel();
}

/** The protocol row for @p protocol, appending one if new (row order
 *  is therefore first-appearance order — deterministic). */
ProtocolStats &
protocolRow(std::vector<ProtocolStats> &rows, const std::string &protocol)
{
    for (ProtocolStats &row : rows) {
        if (row.protocol == protocol)
            return row;
    }
    rows.emplace_back();
    rows.back().protocol = protocol;
    return rows.back();
}

/** Sum of the machine's forward-progress counters: any retired
 *  instruction or finished transfer counts. */
std::uint64_t
progressCount(Machine &machine)
{
    std::uint64_t progress = 0;
    for (unsigned n = 0; n < machine.numNodes(); ++n) {
        progress += machine.node(n).cpu().instructionsRetired();
        progress += machine.node(n)
                        .dmaEngine()
                        .transferEngine()
                        .transfersCompleted();
    }
    return progress;
}

/** One-shot watchdog diagnostics: per-node queue/progress state. */
void
dumpStallDiagnostics(Machine &machine, Tick now)
{
    std::cerr << "workload: stall watchdog: no progress by tick " << now
              << " (" << ticksToUs(now) << " us)\n";
    for (unsigned n = 0; n < machine.numNodes(); ++n) {
        DmaEngine &engine = machine.node(n).dmaEngine();
        std::cerr << "  node" << n << ": instructions "
                  << machine.node(n).cpu().instructionsRetired()
                  << ", syscalls " << machine.node(n).kernel().numSyscalls()
                  << ", switches "
                  << machine.node(n).kernel().numContextSwitches()
                  << ", initiations " << engine.numInitiations()
                  << ", completed "
                  << engine.transferEngine().transfersCompleted()
                  << ", engine busy until "
                  << engine.transferEngine().busyUntil();
        for (unsigned ctx = 0; ctx < engine.numContexts(); ++ctx) {
            if (engine.ringConfigured(ctx)) {
                std::cerr << ", ring" << ctx << " outstanding "
                          << engine.ringOutstanding(ctx);
            }
        }
        std::cerr << "\n";
    }
}

} // namespace

WorkloadResult
runWorkload(const Scenario &scenario, std::uint64_t seed,
            const WorkloadOptions &options)
{
    ULDMA_PROF_SCOPE("workload.run");
    std::vector<std::vector<DmaMethod>> node_methods;
    std::string error;
    const bool derivable = deriveNodeMethods(scenario, node_methods,
                                             &error);
    ULDMA_ASSERT(derivable, "invalid scenario: ", error);

    MachineConfig config;
    config.numNodes = scenario.nodes;
    for (unsigned n = 0; n < scenario.nodes; ++n) {
        NodeConfig nc;
        nc.bus = busFor(scenario.bus);
        nc.cpu.clockMHz = scenario.cpuMhz;
        nc.kernel.syscallOverheadCycles = scenario.syscallCycles;
        const auto &methods = node_methods[n];
        if (!methods.empty()) {
            configureNode(nc, methods.front());
            // configureNode keys the extras off one method; a node can
            // legally mix several methods of one engine mode, so OR in
            // what any of them needs.
            for (DmaMethod m : methods) {
                if (m == DmaMethod::ExtShadow)
                    nc.dma.ctxIdBits = 2;
                if (m == DmaMethod::Flash)
                    nc.dma.flashTagCheck = true;
                if (m == DmaMethod::Cap)
                    nc.dma.cap.enabled = true;
            }
        }
        if (scenario.cap.enabled) {
            // Geometry overrides apply wherever a cap stream enabled
            // the table; the member alone does not switch it on, so a
            // cap-free scenario stays byte-identical to the baseline.
            nc.dma.cap.numSlots = scenario.cap.slots;
            nc.dma.cap.maxSpansPerSlot = scenario.cap.spansPerSlot;
            nc.dma.cap.rateClasses = scenario.cap.rateClasses;
            nc.dma.cap.checkCycles = scenario.cap.checkCycles;
        }
        if (scenario.iotlb.enabled) {
            nc.dma.iommu.enabled = true;
            nc.dma.iommu.iotlbEntries = scenario.iotlb.entries;
            nc.dma.iommu.iotlbWays = scenario.iotlb.ways;
            nc.dma.iommu.iotlbHitCycles = scenario.iotlb.hitCycles;
            nc.dma.iommu.iotlbMissCycles = scenario.iotlb.missCycles;
            nc.dma.iommu.walkCycles = scenario.iotlb.walkCycles;
            nc.dma.iommu.pinPolicy = scenario.iotlb.pinning == "on-demand"
                                         ? PinPolicy::OnDemand
                                         : PinPolicy::OnMap;
            nc.dma.iommu.pinBudgetPages =
                static_cast<unsigned>(scenario.iotlb.pinBudgetPages);
            nc.dma.iommu.faultPolicy = scenario.iotlb.fault == "trap"
                                           ? IommuFaultPolicy::Trap
                                           : IommuFaultPolicy::Abort;
        }
        if (scenario.scheduler.kind == SchedulerSpec::Kind::Random) {
            const std::uint64_t seed_node =
                options.nodeSeedIds.empty() ? n
                                            : options.nodeSeedIds.at(n);
            const std::uint64_t sched_seed =
                streamSeed(seed, seed_node, SeedPurpose::Scheduler);
            const std::uint64_t max_slice = scenario.scheduler.maxSlice;
            nc.makeScheduler = [sched_seed, max_slice]() {
                return std::make_unique<RandomScheduler>(sched_seed,
                                                         max_slice);
            };
        } else {
            const Tick quantum =
                Tick(scenario.scheduler.quantumUs) * tickPerUs;
            nc.makeScheduler = [quantum]() {
                return std::make_unique<RoundRobinScheduler>(quantum);
            };
        }
        config.perNode.push_back(std::move(nc));
    }

    Machine machine(config);
    for (unsigned n = 0; n < scenario.nodes; ++n) {
        for (DmaMethod m : node_methods[n])
            prepareNode(machine, static_cast<NodeId>(n), m);
    }

    span::tracker().enable();

    WorkloadResult result;
    result.seed = seed;
    result.streams.resize(scenario.streams.size());
    for (std::size_t i = 0; i < scenario.streams.size(); ++i) {
        const std::uint64_t seed_index =
            options.streamSeedIds.empty() ? i
                                          : options.streamSeedIds.at(i);
        spawnStream(machine, scenario, scenario.streams[i], seed_index,
                    seed, result.streams[i]);
    }

    machine.start();

    std::uint64_t stall_windows = 0;
    if (options.stallWindowUs > 0.0) {
        const Tick window =
            std::max<Tick>(1, Tick(options.stallWindowUs * tickPerUs));
        // State lives in shared_ptr-free lambda captures by value via
        // mutable: the hook outlives nothing (cleared after run()).
        machine.setRunHook(
            [&machine, &stall_windows, window, next_check = window,
             last_progress = std::uint64_t(0),
             dumped = false](Tick now_tick) mutable {
                if (now_tick < next_check)
                    return true;
                while (next_check <= now_tick)
                    next_check += window;
                const std::uint64_t progress = progressCount(machine);
                if (progress == last_progress) {
                    ++stall_windows;
                    if (!dumped) {
                        dumped = true;
                        dumpStallDiagnostics(machine, now_tick);
                    }
                }
                last_progress = progress;
                return true;
            });
    }

    result.finished =
        machine.run(Tick(scenario.limitUs) * tickPerUs);
    result.durationUs = ticksToUs(machine.now());
    result.stallWindows = stall_windows;
    if (options.stallWindowUs > 0.0)
        machine.setRunHook(nullptr);

    // Protocol rows: worker streams first (fixing first-appearance
    // order and the offered side), then whatever the tracker saw.
    for (const StreamRuntime &stream : result.streams) {
        if (stream.spec->adversarial)
            continue;
        ProtocolStats &row = protocolRow(
            result.protocols, spanProtocolFor(stream.spec->method));
        row.offeredInitiations += stream.issued;
        row.offeredBytes += stream.offeredBytes;
        const std::string method = methodName(stream.spec->method);
        if (std::find(row.methods.begin(), row.methods.end(), method) ==
            row.methods.end())
            row.methods.push_back(method);
    }

    const span::Tracker &tracker = span::tracker();
    for (std::size_t i = 0; i < tracker.size(); ++i) {
        const span::Span &span = tracker.at(i);
        ProtocolStats &row = protocolRow(result.protocols,
                                         span.protocol);
        ++row.opened;
        switch (span.outcome) {
          case span::Outcome::Completed:
            ++row.completed;
            row.completedBytes += span.size;
            row.e2eUs.push_back(
                ticksToUs(span.completed - span.firstAccess));
            break;
          case span::Outcome::Rejected:
            ++row.rejected;
            break;
          case span::Outcome::KeyMismatch:
            ++row.keyMismatch;
            break;
          case span::Outcome::Aborted:
            ++row.aborted;
            break;
          case span::Outcome::InFlight:
            ++row.inFlight;
            break;
        }
    }
    for (ProtocolStats &row : result.protocols)
        std::sort(row.e2eUs.begin(), row.e2eUs.end());

    for (unsigned n = 0; n < machine.numNodes(); ++n) {
        NodeStats stats;
        stats.node = n;
        stats.engineInitiations =
            machine.node(n).dmaEngine().numInitiations();
        stats.contextSwitches =
            machine.node(n).kernel().numContextSwitches();
        stats.syscalls = machine.node(n).kernel().numSyscalls();
        result.perNode.push_back(stats);
    }

    if (options.inspectMachine)
        options.inspectMachine(machine);
    if (!options.keepSpans)
        span::tracker().disable();
    return result;
}

} // namespace uldma::workload
