#include "workload/parallel.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <thread>

#include "util/logging.hh"

namespace uldma::workload {

namespace {

/**
 * Rewrite a shard-local component name ("node2.dma", "node0.cpu", ...)
 * to its global spelling via @p global_of (local node id -> global).
 * Names that don't start with "node<digits>" (e.g. "network") pass
 * through unchanged — the shard tag disambiguates those in merged
 * exports.
 */
std::string
renameNodeComponent(const std::string &name,
                    const std::vector<unsigned> &global_of)
{
    constexpr const char prefix[] = "node";
    constexpr std::size_t prefix_len = 4;
    if (name.compare(0, prefix_len, prefix) != 0)
        return name;
    std::size_t end = prefix_len;
    while (end < name.size() &&
           std::isdigit(static_cast<unsigned char>(name[end])))
        ++end;
    if (end == prefix_len)
        return name;
    const unsigned local = static_cast<unsigned>(
        std::stoul(name.substr(prefix_len, end - prefix_len)));
    if (local >= global_of.size())
        return name;
    return prefix + std::to_string(global_of[local]) + name.substr(end);
}

/** The protocol row for @p protocol, appending one if new (row order
 *  is first-appearance order — deterministic). */
ProtocolStats &
protocolRow(std::vector<ProtocolStats> &rows, const std::string &protocol)
{
    for (ProtocolStats &row : rows) {
        if (row.protocol == protocol)
            return row;
    }
    rows.emplace_back();
    rows.back().protocol = protocol;
    return rows.back();
}

/** Run one shard on the calling thread and fill @p out.  Everything
 *  touched is thread-local or owned by this shard, so concurrent
 *  invocations for distinct shards share no mutable state. */
void
runShard(const Shard &shard, std::uint64_t seed,
         const ParallelOptions &options, ShardOutput &out)
{
    WorkloadOptions wl;
    wl.keepSpans = true;
    wl.stallWindowUs = options.stallWindowUs;
    // Seed identity stays global: node n seeds as global id
    // shard.nodes[n], stream j as global index shard.streams[j] —
    // so a shard draws exactly the randomness its streams would draw
    // in the unsharded scenario.
    wl.nodeSeedIds = shard.nodes;
    wl.streamSeedIds.assign(shard.streams.begin(), shard.streams.end());
    if (options.captureStats) {
        wl.inspectMachine = [&](Machine &machine) {
            out.stats = stats::snapshotRegistry(machine.statsRegistry());
            for (stats::GroupSnapshot &group : out.stats) {
                group.shard = static_cast<int>(shard.id);
                group.name = renameNodeComponent(group.name, shard.nodes);
            }
        };
    }

    if (options.captureTrace)
        trace::eventRing().enable(options.traceCapacity);
    if (options.captureProfile)
        prof::profiler().enable();

    {
        ULDMA_PROF_SCOPE("workload.shard");
        out.result = runWorkload(shard.scenario, seed, wl);
    }

    if (options.captureProfile) {
        out.profile = prof::profiler().snapshot();
        prof::profiler().disable();
    }

    out.spans.shard = shard.id;
    out.spans.opened = span::tracker().opened();
    out.spans.spans = span::tracker().snapshot();
    for (span::Span &s : out.spans.spans)
        s.engine = renameNodeComponent(s.engine, shard.nodes);
    span::tracker().disable();

    if (options.captureTrace) {
        const trace::EventRing &ring = trace::eventRing();
        out.trace.shard = shard.id;
        out.trace.events = ring.snapshot();
        out.trace.recorded = ring.recorded();
        out.trace.dropped = ring.dropped();
        out.trace.filteredOut = ring.filteredOut();
        for (trace::TraceEvent &e : out.trace.events)
            e.component = renameNodeComponent(e.component, shard.nodes);
        trace::eventRing().disable();
    }
}

/** Merge per-shard outputs into one scenario-global WorkloadResult.
 *  Walks shards in plan order only — deterministic by construction. */
WorkloadResult
mergeResults(const Scenario &scenario, std::uint64_t seed,
             const ShardPlan &plan, const std::vector<ShardOutput> &shards)
{
    WorkloadResult merged;
    merged.seed = seed;
    merged.finished = true;
    merged.durationUs = 0.0;
    merged.streams.resize(scenario.streams.size());

    for (std::size_t k = 0; k < plan.shards.size(); ++k) {
        const Shard &shard = plan.shards[k];
        const WorkloadResult &result = shards[k].result;
        merged.finished = merged.finished && result.finished;
        merged.durationUs = std::max(merged.durationUs, result.durationUs);
        merged.stallWindows += result.stallWindows;
        ULDMA_ASSERT(result.streams.size() == shard.streams.size(),
                     "shard result / plan stream count mismatch");
        for (std::size_t j = 0; j < shard.streams.size(); ++j) {
            const std::size_t gi = shard.streams[j];
            merged.streams[gi] = result.streams[j];
            merged.streams[gi].spec = &scenario.streams[gi];
        }
        for (const NodeStats &node : result.perNode) {
            NodeStats global = node;
            global.node = shard.nodes.at(node.node);
            merged.perNode.push_back(global);
        }
    }
    // Per-shard rows arrive grouped by shard; the report keys them by
    // global node id, ascending — same order the single-machine driver
    // produces.
    std::sort(merged.perNode.begin(), merged.perNode.end(),
              [](const NodeStats &a, const NodeStats &b) {
                  return a.node < b.node;
              });

    // Protocol rows: worker streams in global stream order first
    // (fixing row order and the offered side — exactly the unsharded
    // driver's rule), then the achieved side from each shard's rows in
    // plan order.
    for (const StreamRuntime &stream : merged.streams) {
        if (stream.spec == nullptr || stream.spec->adversarial)
            continue;
        ProtocolStats &row = protocolRow(
            merged.protocols, spanProtocolFor(stream.spec->method));
        row.offeredInitiations += stream.issued;
        row.offeredBytes += stream.offeredBytes;
        const std::string method = methodName(stream.spec->method);
        if (std::find(row.methods.begin(), row.methods.end(), method) ==
            row.methods.end())
            row.methods.push_back(method);
    }
    for (const ShardOutput &shard : shards) {
        for (const ProtocolStats &from : shard.result.protocols) {
            ProtocolStats &row = protocolRow(merged.protocols,
                                             from.protocol);
            row.opened += from.opened;
            row.completed += from.completed;
            row.rejected += from.rejected;
            row.keyMismatch += from.keyMismatch;
            row.aborted += from.aborted;
            row.inFlight += from.inFlight;
            row.completedBytes += from.completedBytes;
            row.e2eUs.insert(row.e2eUs.end(), from.e2eUs.begin(),
                             from.e2eUs.end());
        }
    }
    for (ProtocolStats &row : merged.protocols)
        std::sort(row.e2eUs.begin(), row.e2eUs.end());

    return merged;
}

} // namespace

std::vector<ShardReportInfo>
ParallelResult::shardInfos() const
{
    std::vector<ShardReportInfo> infos;
    infos.reserve(plan.shards.size());
    for (std::size_t k = 0; k < plan.shards.size(); ++k) {
        const Shard &shard = plan.shards[k];
        ShardReportInfo info;
        info.id = shard.id;
        info.nodes = shard.nodes;
        info.streams.assign(shard.streams.begin(), shard.streams.end());
        info.durationUs = shards[k].result.durationUs;
        info.finished = shards[k].result.finished;
        infos.push_back(std::move(info));
    }
    return infos;
}

std::vector<span::ShardSpans>
ParallelResult::shardSpans() const
{
    std::vector<span::ShardSpans> all;
    all.reserve(shards.size());
    for (const ShardOutput &shard : shards)
        all.push_back(shard.spans);
    return all;
}

std::vector<stats::GroupSnapshot>
ParallelResult::mergedStats() const
{
    std::vector<stats::GroupSnapshot> all;
    for (const ShardOutput &shard : shards)
        all.insert(all.end(), shard.stats.begin(), shard.stats.end());
    return all;
}

std::vector<trace::ShardTrace>
ParallelResult::shardTraces() const
{
    std::vector<trace::ShardTrace> all;
    all.reserve(shards.size());
    for (const ShardOutput &shard : shards)
        all.push_back(shard.trace);
    return all;
}

prof::ProfileNode
ParallelResult::mergedProfile() const
{
    std::vector<prof::ProfileNode> roots;
    roots.reserve(shards.size());
    for (const ShardOutput &shard : shards)
        roots.push_back(shard.profile);
    return prof::mergeProfiles(roots);
}

std::vector<ParallelResult::WorkerTimelineRow>
ParallelResult::workerTimeline() const
{
    std::vector<WorkerTimelineRow> rows;
    rows.reserve(shards.size());
    for (std::size_t k = 0; k < shards.size(); ++k) {
        WorkerTimelineRow row;
        row.shard = k < plan.shards.size() ? plan.shards[k].id
                                           : static_cast<unsigned>(k);
        row.worker = shards[k].worker;
        row.startMs = shards[k].hostStartNs / 1e6;
        row.endMs = shards[k].hostEndNs / 1e6;
        row.simUs = shards[k].result.durationUs;
        row.stallWindows = shards[k].result.stallWindows;
        rows.push_back(row);
    }
    return rows;
}

ParallelResult
runParallelWorkload(const Scenario &scenario, std::uint64_t seed,
                    const ParallelOptions &options)
{
    ParallelResult out;
    out.plan = planShards(scenario);
    const std::size_t count = out.plan.shards.size();
    out.shards.resize(count);

    // A fixed queue of shards drained by however many workers the
    // caller asked for: results land in pre-sized slots keyed by shard
    // id, so neither the outputs nor their order depend on which
    // worker ran what, or when.
    const unsigned pool_size = std::max(
        1u, std::min(options.threads,
                     static_cast<unsigned>(count ? count : 1)));
    std::atomic<std::size_t> next{0};
    const auto epoch = std::chrono::steady_clock::now();
    auto elapsed_ns = [epoch]() {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - epoch)
                .count());
    };
    auto drain = [&](unsigned worker) {
        for (std::size_t k = next.fetch_add(1); k < count;
             k = next.fetch_add(1)) {
            out.shards[k].worker = worker;
            out.shards[k].hostStartNs = elapsed_ns();
            runShard(out.plan.shards[k], seed, options, out.shards[k]);
            out.shards[k].hostEndNs = elapsed_ns();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(pool_size);
    for (unsigned t = 0; t < pool_size; ++t)
        pool.emplace_back(drain, t);
    for (std::thread &t : pool)
        t.join();

    out.merged = mergeResults(scenario, seed, out.plan, out.shards);
    return out;
}

} // namespace uldma::workload
