#include "workload/report.hh"

#include "sim/json.hh"
#include "sim/stats.hh"

namespace uldma::workload {

namespace {

/** {count, mean, min, max, p50, p90, p99} of an ascending sample. */
void
writeQuantiles(json::Writer &w, const std::vector<double> &sorted)
{
    w.beginObject();
    w.member("count", std::uint64_t(sorted.size()));
    double sum = 0.0;
    for (double v : sorted)
        sum += v;
    w.member("mean", sorted.empty() ? 0.0 : sum / double(sorted.size()));
    w.member("min", sorted.empty() ? 0.0 : sorted.front());
    w.member("max", sorted.empty() ? 0.0 : sorted.back());
    w.member("p50", stats::percentileOfSorted(sorted, 50.0));
    w.member("p90", stats::percentileOfSorted(sorted, 90.0));
    w.member("p99", stats::percentileOfSorted(sorted, 99.0));
    w.endObject();
}

double
ratePerSec(std::uint64_t count, double duration_us)
{
    return duration_us > 0.0 ? double(count) / (duration_us / 1e6) : 0.0;
}

} // namespace

void
writeWorkloadReport(std::ostream &os, const Scenario &scenario,
                    const WorkloadResult &result, bool pretty,
                    const std::vector<ShardReportInfo> *shards)
{
    std::uint64_t offered_initiations = 0, offered_bytes = 0;
    std::uint64_t failures = 0;
    for (const StreamRuntime &stream : result.streams) {
        offered_initiations += stream.issued;
        offered_bytes += stream.offeredBytes;
        failures += stream.failures;
    }
    std::uint64_t opened = 0, completed = 0, completed_bytes = 0;
    for (const ProtocolStats &row : result.protocols) {
        opened += row.opened;
        completed += row.completed;
        completed_bytes += row.completedBytes;
    }

    json::Writer w(os, pretty);
    w.beginObject();
    w.member("schema", "uldma-workload-v1");
    w.member("scenario", scenario.name);
    w.member("seed", result.seed);
    w.member("nodes", std::uint64_t(scenario.nodes));
    w.member("finished", result.finished);
    w.member("duration_us", result.durationUs);

    w.key("offered");
    w.beginObject();
    w.member("initiations", offered_initiations);
    w.member("bytes", offered_bytes);
    w.member("rate_per_sec",
             ratePerSec(offered_initiations, result.durationUs));
    w.endObject();

    w.key("achieved");
    w.beginObject();
    w.member("initiations", opened);
    w.member("completed", completed);
    w.member("bytes", completed_bytes);
    w.member("rate_per_sec", ratePerSec(completed, result.durationUs));
    w.member("failures", failures);
    w.endObject();

    w.key("per_protocol");
    w.beginArray();
    for (const ProtocolStats &row : result.protocols) {
        w.beginObject();
        w.member("protocol", row.protocol);
        w.key("methods");
        w.beginArray();
        for (const std::string &method : row.methods)
            w.value(method);
        w.endArray();
        w.member("offered_initiations", row.offeredInitiations);
        w.member("offered_bytes", row.offeredBytes);
        w.member("initiations", row.opened);
        w.member("completed", row.completed);
        w.member("rejected", row.rejected);
        w.member("key_mismatch", row.keyMismatch);
        w.member("aborted", row.aborted);
        w.member("in_flight", row.inFlight);
        w.member("completed_bytes", row.completedBytes);
        w.key("end_to_end_us");
        writeQuantiles(w, row.e2eUs);
        w.endObject();
    }
    w.endArray();

    w.key("streams");
    w.beginArray();
    for (const StreamRuntime &stream : result.streams) {
        const StreamSpec &spec = *stream.spec;
        w.beginObject();
        w.member("name", spec.name);
        w.member("node", std::uint64_t(spec.node));
        w.member("protocol", methodName(spec.method));
        w.member("count", std::uint64_t(spec.count));
        w.member("adversarial", spec.adversarial);
        w.member("queue_depth", std::uint64_t(spec.queueDepth));
        w.member("initiations", stream.issued);
        w.member("offered_bytes", stream.offeredBytes);
        w.member("failures", stream.failures);
        w.member("kernel_fallbacks", stream.kernelFallbacks);
        w.member("adversarial_ops", stream.adversarialOps);
        w.endObject();
    }
    w.endArray();

    w.key("per_node");
    w.beginArray();
    for (const NodeStats &node : result.perNode) {
        w.beginObject();
        w.member("node", std::uint64_t(node.node));
        w.member("engine_initiations", node.engineInitiations);
        w.member("context_switches", node.contextSwitches);
        w.member("syscalls", node.syscalls);
        w.endObject();
    }
    w.endArray();

    if (shards != nullptr) {
        w.key("shards");
        w.beginArray();
        for (const ShardReportInfo &shard : *shards) {
            w.beginObject();
            w.member("id", std::uint64_t(shard.id));
            w.key("nodes");
            w.beginArray();
            for (unsigned n : shard.nodes)
                w.value(std::uint64_t(n));
            w.endArray();
            w.key("streams");
            w.beginArray();
            for (std::uint64_t s : shard.streams)
                w.value(s);
            w.endArray();
            w.member("duration_us", shard.durationUs);
            w.member("finished", shard.finished);
            w.endObject();
        }
        w.endArray();
    }

    w.endObject();
    os << "\n";
}

} // namespace uldma::workload
