/**
 * @file
 * Serialisation of a WorkloadResult as one uldma-workload-v1 JSON
 * document (see docs/WORKLOADS.md and docs/OBSERVABILITY.md).  Built
 * on json::Writer, so identical results serialise to identical bytes
 * — the foundation of the engine's determinism tests.
 */

#ifndef ULDMA_WORKLOAD_REPORT_HH
#define ULDMA_WORKLOAD_REPORT_HH

#include <ostream>

#include "workload/driver.hh"

namespace uldma::workload {

/** Write @p result (of running @p scenario) as uldma-workload-v1. */
void writeWorkloadReport(std::ostream &os, const Scenario &scenario,
                         const WorkloadResult &result, bool pretty = true);

} // namespace uldma::workload

#endif // ULDMA_WORKLOAD_REPORT_HH
