/**
 * @file
 * Serialisation of a WorkloadResult as one uldma-workload-v1 JSON
 * document (see docs/WORKLOADS.md and docs/OBSERVABILITY.md).  Built
 * on json::Writer, so identical results serialise to identical bytes
 * — the foundation of the engine's determinism tests.
 */

#ifndef ULDMA_WORKLOAD_REPORT_HH
#define ULDMA_WORKLOAD_REPORT_HH

#include <ostream>

#include "workload/driver.hh"

namespace uldma::workload {

/** Per-shard summary row of a sharded run, for the report's "shards"
 *  array (see docs/SCHEMAS.md).  Built by the parallel runner. */
struct ShardReportInfo
{
    unsigned id = 0;
    /** Member nodes, global ids, ascending. */
    std::vector<unsigned> nodes;
    /** Member streams, global indices, ascending. */
    std::vector<std::uint64_t> streams;
    /** Simulated time the shard covered, microseconds. */
    double durationUs = 0.0;
    bool finished = false;
};

/**
 * Write @p result (of running @p scenario) as uldma-workload-v1.
 * When @p shards is non-null the document additionally carries a
 * "shards" array describing the parallel execution plan — purely a
 * function of (scenario, seed), never of the thread count, so sharded
 * reports stay byte-deterministic.
 */
void writeWorkloadReport(std::ostream &os, const Scenario &scenario,
                         const WorkloadResult &result, bool pretty = true,
                         const std::vector<ShardReportInfo> *shards =
                             nullptr);

} // namespace uldma::workload

#endif // ULDMA_WORKLOAD_REPORT_HH
