/**
 * @file
 * Seed derivation and distribution sampling for the workload engine.
 *
 * Every stream of randomness in a workload run (per-process sizes,
 * arrival intervals, adversarial mixes, per-node scheduler seeds)
 * derives its own independent seed from (scenario seed, stream index,
 * purpose) through a splitmix64-style mixer, so adding a stream — or
 * drawing one extra number in one stream — never perturbs the others.
 * That independence is what makes `--seed` byte-deterministic.
 */

#ifndef ULDMA_WORKLOAD_PRNG_HH
#define ULDMA_WORKLOAD_PRNG_HH

#include "util/random.hh"
#include "workload/scenario.hh"

namespace uldma::workload {

/** What a derived stream of randomness feeds. */
enum class SeedPurpose : std::uint64_t
{
    Sizes = 1,
    Pacing = 2,
    Adversarial = 3,
    Scheduler = 4,
};

/**
 * Independent seed for (scenario @p seed, @p stream index, @p purpose).
 * Distinct inputs give (with overwhelming probability) distinct,
 * uncorrelated seeds.
 */
std::uint64_t streamSeed(std::uint64_t seed, std::uint64_t stream,
                         SeedPurpose purpose);

/** Draw one transfer size (bytes) from @p dist. */
Addr sampleSize(const SizeDist &dist, Random &rng);

/** Draw one arrival interval (microseconds) from @p dist. */
std::uint64_t sampleIntervalUs(const IntervalDist &dist, Random &rng);

/** Mean of @p dist in bytes (offered-load accounting). */
double meanSize(const SizeDist &dist);

} // namespace uldma::workload

#endif // ULDMA_WORKLOAD_PRNG_HH
