/**
 * @file
 * Parallel sharded workload execution: run each shard of a
 * ShardPlan on its own std::thread — one Machine per shard, with
 * thread-local PRNG derivations, stats Registry, span Tracker and
 * trace EventRing, so no simulation state is shared — then merge the
 * per-shard results into one aggregate that is byte-identical
 * regardless of thread count.
 *
 * The determinism contract: the shard plan is a pure function of the
 * scenario (workload/shard.hh), per-shard execution is a pure
 * function of (shard scenario, seed, global seed-identity maps), and
 * the merge walks shards in plan order.  `threads` only sizes the
 * worker pool draining a fixed shard queue, so `--threads N` and
 * `--threads 1` serialise to the same bytes — the property
 * tests/test_parallel_workload.cpp pins for every shipped scenario.
 */

#ifndef ULDMA_WORKLOAD_PARALLEL_HH
#define ULDMA_WORKLOAD_PARALLEL_HH

#include "prof/profiler.hh"
#include "sim/span.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "workload/driver.hh"
#include "workload/report.hh"
#include "workload/shard.hh"

namespace uldma::workload {

/** Knobs of one parallel run. */
struct ParallelOptions
{
    /** Worker threads draining the shard queue (>= 1; more threads
     *  than shards is fine — the extras exit immediately). */
    unsigned threads = 1;

    /** Snapshot each shard's stats registry (for the merged
     *  uldma-stats-v1 export). */
    bool captureStats = false;

    /** Capture each shard's structured trace events (for the merged
     *  chrome://tracing export). */
    bool captureTrace = false;

    /** Per-shard event-ring capacity when captureTrace is set. */
    std::size_t traceCapacity = 1 << 16;

    /** Capture each shard's scoped profile (prof::Profiler) for the
     *  merged uldma-profile-v1 export. */
    bool captureProfile = false;

    /** Per-shard stall-watchdog window, simulated microseconds
     *  (0 disables — see WorkloadOptions::stallWindowUs). */
    double stallWindowUs = 0.0;
};

/** Everything one shard produced. */
struct ShardOutput
{
    /** The shard driver's result; stream specs point into the plan's
     *  shard scenario, per-node rows carry shard-local node ids. */
    WorkloadResult result;
    /** Captured spans, engine names rewritten to global node ids. */
    span::ShardSpans spans;
    /** Stats snapshot (captureStats), group names rewritten to global
     *  node ids and tagged with the shard id. */
    std::vector<stats::GroupSnapshot> stats;
    /** Trace capture (captureTrace), component names rewritten. */
    trace::ShardTrace trace;
    /** Profile capture (captureProfile): this shard's scope tree. */
    prof::ProfileNode profile;
    /** Worker-pool thread (0-based) that executed this shard. */
    unsigned worker = 0;
    /** Host-clock shard window relative to pool launch (ns).  For the
     *  human busy/idle timeline only — never serialised. */
    std::uint64_t hostStartNs = 0;
    std::uint64_t hostEndNs = 0;
};

/** A parallel run: plan, per-shard outputs, deterministic aggregate. */
struct ParallelResult
{
    ShardPlan plan;
    std::vector<ShardOutput> shards;

    /** The merged aggregate, expressed against the original scenario:
     *  streams in global order with specs pointing into it, per-node
     *  rows keyed by global node id, duration the max over shards,
     *  finished the conjunction. */
    WorkloadResult merged;

    /** Shard summary rows for writeWorkloadReport's "shards" array. */
    std::vector<ShardReportInfo> shardInfos() const;

    /** Per-shard span captures in plan order (exportMergedSpansJson
     *  input). */
    std::vector<span::ShardSpans> shardSpans() const;

    /** Concatenated renamed stats snapshots in plan order
     *  (writeStatsJson input); empty without captureStats. */
    std::vector<stats::GroupSnapshot> mergedStats() const;

    /** Per-shard trace captures in plan order
     *  (exportMergedChromeTracing input); empty without
     *  captureTrace. */
    std::vector<trace::ShardTrace> shardTraces() const;

    /** Shard profiles folded in plan order (writeProfileJson input);
     *  an empty tree without captureProfile.  Deterministic for any
     *  thread count. */
    prof::ProfileNode mergedProfile() const;

    /** One row of the per-shard worker busy/idle timeline. */
    struct WorkerTimelineRow
    {
        unsigned shard = 0;
        unsigned worker = 0;
        double startMs = 0.0;  ///< host ms after pool launch
        double endMs = 0.0;
        double simUs = 0.0;    ///< simulated time the shard covered
        std::uint64_t stallWindows = 0;
    };

    /** Host-clock shard schedule across the worker pool, shard order.
     *  Human diagnostics only (wall clock!) — keep out of artifacts. */
    std::vector<WorkerTimelineRow> workerTimeline() const;
};

/**
 * Plan, execute and merge @p scenario under @p seed.  Deterministic:
 * the same (scenario, seed) yields the same ParallelResult — and
 * hence the same serialised artifacts — for every
 * @p options.threads.  The scenario must outlive the result (merged
 * stream specs point into it).
 */
ParallelResult runParallelWorkload(const Scenario &scenario,
                                   std::uint64_t seed,
                                   const ParallelOptions &options = {});

} // namespace uldma::workload

#endif // ULDMA_WORKLOAD_PARALLEL_HH
