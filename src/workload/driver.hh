/**
 * @file
 * The workload driver: builds a (possibly heterogeneous) machine from
 * a Scenario, spawns every stream, runs to completion or the
 * scenario's time cap, and aggregates what the span tracker and the
 * per-node components observed into a WorkloadResult — the offered
 * load vs achieved throughput answer a scenario exists to produce.
 */

#ifndef ULDMA_WORKLOAD_DRIVER_HH
#define ULDMA_WORKLOAD_DRIVER_HH

#include "workload/generator.hh"
#include "workload/scenario.hh"

namespace uldma::workload {

struct WorkloadOptions
{
    /** Leave the calling thread's span tracker enabled and populated
     *  after the run (e.g. so a caller can also export
     *  uldma-spans-v1).  By default the driver disables it to restore
     *  the zero-cost state it found. */
    bool keepSpans = false;

    /**
     * Seed-identity maps for sharded execution (workload/shard.hh):
     * when non-empty, node n derives its scheduler seed from
     * nodeSeedIds[n] and stream i derives its PRNG streams from
     * streamSeedIds[i] instead of the local indices, so a shard-local
     * sub-scenario draws exactly the randomness its streams would
     * draw in the whole scenario.  Empty (the default) keeps identity
     * — local indices are the seed ids.
     */
    std::vector<unsigned> nodeSeedIds;
    std::vector<std::uint64_t> streamSeedIds;

    /**
     * Invoked with the finished Machine just before runWorkload
     * returns (and destroys it) — the only window in which a caller
     * can snapshot the stats registry or other component state.  The
     * sharded runner captures per-shard stats through this.
     */
    std::function<void(Machine &)> inspectMachine;

    /**
     * Stall watchdog: when nonzero, the driver checks every
     * stallWindowUs of simulated time whether the machine made
     * progress (instructions retired or transfers completed).  A
     * windowful of no progress counts in WorkloadResult::stallWindows
     * and dumps per-node diagnostics to stderr once per run.  The run
     * itself is never aborted — the scenario's limit_us still bounds
     * it — and the check writes nothing into exported artifacts, so
     * determinism is unaffected.
     */
    double stallWindowUs = 0.0;
};

/** Achieved-side aggregate of one span protocol. */
struct ProtocolStats
{
    /** Span protocol name ("kernel" or an engine-mode name). */
    std::string protocol;
    /** Scenario methods mapping to this protocol, in stream order. */
    std::vector<std::string> methods;

    /// @name Offered (programmed) load from worker streams.
    /// @{
    std::uint64_t offeredInitiations = 0;
    std::uint64_t offeredBytes = 0;
    /// @}

    /// @name Achieved counts from the span tracker.
    /// @{
    std::uint64_t opened = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t keyMismatch = 0;
    std::uint64_t aborted = 0;
    std::uint64_t inFlight = 0;
    std::uint64_t completedBytes = 0;
    /// @}

    /** End-to-end latencies of completed spans, microseconds,
     *  ascending. */
    std::vector<double> e2eUs;
};

/** What one node's components counted. */
struct NodeStats
{
    unsigned node = 0;
    std::uint64_t engineInitiations = 0;
    std::uint64_t contextSwitches = 0;
    std::uint64_t syscalls = 0;
};

/**
 * Everything one run produced.  Stream entries keep their spec
 * pointers, so the Scenario must outlive the result.
 */
struct WorkloadResult
{
    std::uint64_t seed = 0;
    /** False if the scenario's limit_us cap cut the run short. */
    bool finished = false;
    /** Simulated time the run covered, microseconds. */
    double durationUs = 0.0;
    std::vector<StreamRuntime> streams;
    std::vector<ProtocolStats> protocols;
    std::vector<NodeStats> perNode;
    /** Watchdog windows that saw no progress (0 when disabled). */
    std::uint64_t stallWindows = 0;
};

/**
 * Run @p scenario with @p seed.  Byte-deterministic: the same
 * (scenario, seed) always yields the same result (and hence the same
 * serialised report).
 */
WorkloadResult runWorkload(const Scenario &scenario, std::uint64_t seed,
                           const WorkloadOptions &options = {});

} // namespace uldma::workload

#endif // ULDMA_WORKLOAD_DRIVER_HH
