#include "workload/shard.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"

namespace uldma::workload {

namespace {

/** Path-compressing union-find root lookup. */
unsigned
findRoot(std::vector<unsigned> &parent, unsigned n)
{
    while (parent[n] != n) {
        parent[n] = parent[parent[n]];
        n = parent[n];
    }
    return n;
}

} // namespace

ShardPlan
planShards(const Scenario &scenario)
{
    const unsigned nodes = scenario.nodes;
    std::vector<unsigned> parent(nodes);
    std::iota(parent.begin(), parent.end(), 0u);

    for (const StreamSpec &stream : scenario.streams) {
        ULDMA_ASSERT(stream.node < nodes,
                     "stream node out of range: ", stream.node);
        if (stream.remoteNode < 0)
            continue;
        const auto remote = static_cast<unsigned>(stream.remoteNode);
        ULDMA_ASSERT(remote < nodes,
                     "stream remote node out of range: ", remote);
        const unsigned a = findRoot(parent, stream.node);
        const unsigned b = findRoot(parent, remote);
        // Union by smaller root, so component representatives are the
        // smallest member node — the plan's shard order.
        if (a != b)
            parent[std::max(a, b)] = std::min(a, b);
    }

    ShardPlan plan;
    plan.shardOfNode.assign(nodes, 0);
    plan.localOfNode.assign(nodes, 0);

    // Shards in ascending-representative order; nodes ascend within a
    // shard because we scan global ids in order.
    std::vector<int> shardOfRoot(nodes, -1);
    for (unsigned n = 0; n < nodes; ++n) {
        const unsigned root = findRoot(parent, n);
        if (shardOfRoot[root] < 0) {
            shardOfRoot[root] = static_cast<int>(plan.shards.size());
            plan.shards.emplace_back();
            plan.shards.back().id =
                static_cast<unsigned>(plan.shards.size() - 1);
        }
        Shard &shard =
            plan.shards[static_cast<std::size_t>(shardOfRoot[root])];
        plan.shardOfNode[n] = shard.id;
        plan.localOfNode[n] = static_cast<unsigned>(shard.nodes.size());
        shard.nodes.push_back(n);
    }

    for (Shard &shard : plan.shards) {
        Scenario &sub = shard.scenario;
        sub.name = scenario.name;
        sub.description = scenario.description;
        sub.nodes = static_cast<unsigned>(shard.nodes.size());
        sub.bus = scenario.bus;
        sub.cpuMhz = scenario.cpuMhz;
        sub.syscallCycles = scenario.syscallCycles;
        sub.scheduler = scenario.scheduler;
        sub.iotlb = scenario.iotlb;
        sub.limitUs = scenario.limitUs;
    }

    for (std::size_t i = 0; i < scenario.streams.size(); ++i) {
        const StreamSpec &spec = scenario.streams[i];
        Shard &shard = plan.shards[plan.shardOfNode[spec.node]];
        StreamSpec local = spec;
        local.node = static_cast<NodeId>(plan.localOfNode[spec.node]);
        if (spec.remoteNode >= 0) {
            const auto remote = static_cast<unsigned>(spec.remoteNode);
            ULDMA_ASSERT(plan.shardOfNode[remote] == shard.id,
                         "remote node escaped its shard");
            local.remoteNode =
                static_cast<int>(plan.localOfNode[remote]);
        }
        shard.streams.push_back(i);
        shard.scenario.streams.push_back(std::move(local));
    }

    return plan;
}

} // namespace uldma::workload
