/**
 * @file
 * Declarative workload scenarios: a JSON spec (schema
 * uldma-scenario-v1, see docs/WORKLOADS.md) describing N processes
 * across M nodes, each issuing DMA initiations with a per-stream
 * protocol, transfer-size distribution, and pacing discipline — plus
 * interference knobs (scheduler choice, adversarial streams reusing
 * the attack harness's access mix).
 *
 * Parsing is strict: unknown members anywhere in the document are
 * errors, so a typo'd knob can never silently run the default
 * experiment.  A parsed Scenario is pure data; the driver
 * (workload/driver.hh) turns it into a Machine and traffic.
 */

#ifndef ULDMA_WORKLOAD_SCENARIO_HH
#define ULDMA_WORKLOAD_SCENARIO_HH

#include <string>
#include <vector>

#include "core/methods.hh"

namespace uldma::workload {

/** Transfer-size distribution of one stream. */
struct SizeDist
{
    enum class Kind : std::uint8_t { Fixed, Uniform, Zipf };

    Kind kind = Kind::Fixed;
    /** Fixed: every transfer is this many bytes. */
    Addr fixedBytes = 8;
    /** Uniform: bytes drawn uniformly from [minBytes, maxBytes]. */
    Addr minBytes = 8;
    Addr maxBytes = 8;
    /** Zipf: bucketed sizes; bucket k (0-based rank) has weight
     *  1/(k+1)^exponent, so earlier buckets dominate. */
    std::vector<Addr> zipfSizes;
    double zipfExponent = 1.0;
};

/** Inter-arrival interval distribution (open-loop pacing). */
struct IntervalDist
{
    enum class Kind : std::uint8_t { Fixed, Uniform };

    Kind kind = Kind::Fixed;
    std::uint64_t fixedUs = 0;
    std::uint64_t minUs = 0;
    std::uint64_t maxUs = 0;
};

/** Pacing discipline of one stream. */
struct Pacing
{
    enum class Kind : std::uint8_t
    {
        /** Issue the next initiation after observing the previous
         *  status, then think for thinkUs. */
        Closed,
        /** Issue initiations separated by arrival intervals drawn from
         *  @ref interval, regardless of status. */
        Open,
    };

    Kind kind = Kind::Closed;
    std::uint64_t thinkUs = 0;
    IntervalDist interval;
};

/** One traffic stream: @ref count identical processes on one node. */
struct StreamSpec
{
    std::string name;
    unsigned count = 1;
    NodeId node = 0;
    DmaMethod method = DmaMethod::ExtShadow;
    /** Adversarial: instead of initiations, issue @ref ops random
     *  shadow accesses (core/attack's randomized-attack access mix). */
    bool adversarial = false;
    /** Worker streams: DMA initiations per process. */
    unsigned initiations = 0;
    /** Adversarial streams: shadow accesses per process. */
    unsigned ops = 40;
    SizeDist size;
    Pacing pacing;
    /** Distinct page slots cycled through (paper §3.4). */
    unsigned slots = 8;
    /** Ring streams only: descriptors enqueued per doorbell (the ring
     *  is sized to match, docs/RING.md).  1 = one-by-one. */
    unsigned queueDepth = 1;
    /** Ring streams under an "iotlb" scenario only: pages per transfer
     *  buffer ("sg_buffer").  > 1 lets the size distribution span
     *  multiple pages, which the engine scatter-gathers into per-page
     *  bus transactions (docs/IOMMU.md). */
    unsigned sgPages = 1;
    /** >= 0: destinations live on that node, reached through a remote
     *  window (multi-node traffic).  -1 = local destinations. */
    int remoteNode = -1;
    /** Cap streams only: weighted-round-robin rate class the stream's
     *  grants run at (class c gets weight 1<<c, docs/CAPABILITIES.md). */
    unsigned rateClass = 0;
};

/** Engine IOMMU/IOTLB configuration (the "iotlb" scenario member,
 *  docs/IOMMU.md).  When present, every node's DMA engine gets an
 *  IOMMU and ring streams carry virtual-address descriptors. */
struct IotlbSpec
{
    bool enabled = false;
    unsigned entries = 16;       ///< total IOTLB entries
    unsigned ways = 4;           ///< set associativity
    std::uint64_t hitCycles = 1;
    std::uint64_t missCycles = 6;
    std::uint64_t walkCycles = 60;
    /** "on-map" | "on-demand" (PinPolicy). */
    std::string pinning = "on-map";
    /** Max pinned pages per context; 0 = unlimited. */
    std::uint64_t pinBudgetPages = 0;
    /** "abort" | "trap" (IommuFaultPolicy). */
    std::string fault = "abort";
};

/** Capability-table geometry (the "capability" scenario member,
 *  docs/CAPABILITIES.md).  The table itself is enabled whenever any
 *  stream runs the cap protocol; this member only overrides the
 *  engine defaults (slot count, spans, rate classes, check cost). */
struct CapSpec
{
    bool enabled = false;
    unsigned slots = 256;        ///< capability-table entries (tenants)
    unsigned spansPerSlot = 8;   ///< frame spans one slot may hold
    unsigned rateClasses = 4;    ///< WRR rate classes (weight 1<<c)
    std::uint64_t checkCycles = 2;  ///< per-presentation validation cost
};

/** Scheduler every node runs. */
struct SchedulerSpec
{
    enum class Kind : std::uint8_t { RoundRobin, Random };

    Kind kind = Kind::RoundRobin;
    /** Round-robin quantum. */
    std::uint64_t quantumUs = 100;
    /** Random preemption: max instructions per slice (interference
     *  pressure; seeds derive from the run seed). */
    std::uint64_t maxSlice = 3;
};

/** A whole scenario (schema uldma-scenario-v1). */
struct Scenario
{
    std::string name;
    std::string description;
    unsigned nodes = 1;
    /** I/O bus generation: tc | pci33 | pci66. */
    std::string bus = "tc";
    std::uint64_t cpuMhz = 150;
    Cycles syscallCycles = 2300;
    SchedulerSpec scheduler;
    /** Engine IOMMU (absent = no IOMMU, byte-identical baseline). */
    IotlbSpec iotlb;
    /** Capability-table overrides (absent = engine defaults). */
    CapSpec cap;
    /** Simulated-time cap; a run hitting it reports finished=false. */
    std::uint64_t limitUs = 60 * 1000 * 1000;
    std::vector<StreamSpec> streams;
};

/** CLI/scenario protocol name of @p method (e.g. "key-based"). */
const char *methodName(DmaMethod method);

/** Parse a protocol name; false if unknown. */
bool parseMethodName(const std::string &name, DmaMethod &out);

/**
 * Parse @p text as one uldma-scenario-v1 document.  Strict: schema
 * violations, unknown members, out-of-range values and per-node
 * engine-mode conflicts are all errors.
 * @return true on success; on failure @p error describes the problem.
 */
bool parseScenario(const std::string &text, Scenario &out,
                   std::string *error);

/** Read @p path and parseScenario its contents. */
bool loadScenarioFile(const std::string &path, Scenario &out,
                      std::string *error);

/**
 * The engine-relevant methods of every node, deduplicated in stream
 * order (kernel-path streams excluded — the kernel channel works in
 * any engine mode).  Fails if two streams on one node need different
 * engine modes.
 */
bool deriveNodeMethods(const Scenario &scenario,
                       std::vector<std::vector<DmaMethod>> &per_node,
                       std::string *error);

} // namespace uldma::workload

#endif // ULDMA_WORKLOAD_SCENARIO_HH
