/**
 * @file
 * Stream spawning: turns one StreamSpec into @ref StreamSpec::count
 * live processes on its node — worker processes issuing paced DMA
 * initiations, or adversarial processes replaying the attack harness's
 * random shadow-access mix.  All randomness (sizes, arrival gaps,
 * adversarial mixes) is drawn at build time from per-stream PRNGs
 * derived via workload/prng.hh, so the emitted programs — and hence
 * the whole run — are a pure function of (scenario, seed).
 */

#ifndef ULDMA_WORKLOAD_GENERATOR_HH
#define ULDMA_WORKLOAD_GENERATOR_HH

#include "core/machine.hh"
#include "workload/scenario.hh"

namespace uldma::workload {

/**
 * Live counters of one stream (all replicas summed).  Offered-side
 * numbers are fixed at program-build time; @ref failures is bumped by
 * in-program callbacks while the machine runs, so the object must
 * outlive Machine::run().
 */
struct StreamRuntime
{
    const StreamSpec *spec = nullptr;
    /** Initiations programmed (the offered load). */
    std::uint64_t issued = 0;
    /** Bytes across all programmed initiations. */
    std::uint64_t offeredBytes = 0;
    /** Initiations whose observed status was dmastatus::failure. */
    std::uint64_t failures = 0;
    /** Replicas that lost the context lottery and fell back to the
     *  kernel channel (paper §3.2). */
    std::uint64_t kernelFallbacks = 0;
    /** Adversarial shadow accesses programmed. */
    std::uint64_t adversarialOps = 0;
};

/**
 * Spawn every replica of @p spec on its node.  @p stream_index is the
 * stream's position in the scenario (seed derivation); @p seed is the
 * run seed.  Counters land in @p runtime, whose address must stay
 * valid until the run finishes.
 */
void spawnStream(Machine &machine, const Scenario &scenario,
                 const StreamSpec &spec, std::uint64_t stream_index,
                 std::uint64_t seed, StreamRuntime &runtime);

} // namespace uldma::workload

#endif // ULDMA_WORKLOAD_GENERATOR_HH
