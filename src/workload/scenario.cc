#include "workload/scenario.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "sim/json.hh"
#include "vm/layout.hh"

namespace uldma::workload {

namespace {

using json::Value;

/** Largest user-level transfer the engine accepts (one page). */
constexpr Addr maxTransferBytes = pageSize;

/** Failure helper: set *error (if any) and return false. */
bool
fail(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
    return false;
}

/** Every member of @p obj must be one of @p allowed. */
bool
checkKeys(const Value &obj, std::initializer_list<const char *> allowed,
          const std::string &where, std::string *error)
{
    for (const auto &[key, unused] : obj.asObject()) {
        (void)unused;
        const bool known =
            std::any_of(allowed.begin(), allowed.end(),
                        [&](const char *a) { return key == a; });
        if (!known)
            return fail(error, where + ": unknown member '" + key + "'");
    }
    return true;
}

/** Fetch a required/optional non-negative integer member. */
bool
getUint(const Value &obj, const char *key, std::uint64_t &out,
        bool required, const std::string &where, std::string *error)
{
    const Value &v = obj[key];
    if (v.isNull()) {
        if (required)
            return fail(error, where + ": missing member '" + key + "'");
        return true;
    }
    if (!v.isNumber())
        return fail(error, where + "." + key + " must be a number");
    const double d = v.asNumber();
    if (d < 0 || d != std::floor(d) || d > 9.0e15)
        return fail(error,
                    where + "." + key + " must be a non-negative integer");
    out = static_cast<std::uint64_t>(d);
    return true;
}

bool
getString(const Value &obj, const char *key, std::string &out,
          bool required, const std::string &where, std::string *error)
{
    const Value &v = obj[key];
    if (v.isNull()) {
        if (required)
            return fail(error, where + ": missing member '" + key + "'");
        return true;
    }
    if (!v.isString())
        return fail(error, where + "." + key + " must be a string");
    out = v.asString();
    return true;
}

bool
parseSize(const Value &v, SizeDist &out, Addr cap,
          const std::string &where, std::string *error)
{
    if (v.isNull())
        return true;    // keep the fixed-8-bytes default
    if (!v.isObject())
        return fail(error, where + " must be an object");
    if (!checkKeys(v, {"kind", "bytes", "min", "max", "sizes", "exponent"},
                   where, error))
        return false;

    std::string kind;
    if (!getString(v, "kind", kind, true, where, error))
        return false;

    if (kind == "fixed") {
        std::uint64_t bytes = 0;
        if (!getUint(v, "bytes", bytes, true, where, error))
            return false;
        if (bytes < 1 || bytes > cap)
            return fail(error, where + ".bytes must be in [1, " +
                                   std::to_string(cap) + "]");
        out.kind = SizeDist::Kind::Fixed;
        out.fixedBytes = bytes;
        return true;
    }
    if (kind == "uniform") {
        std::uint64_t lo = 0, hi = 0;
        if (!getUint(v, "min", lo, true, where, error) ||
            !getUint(v, "max", hi, true, where, error))
            return false;
        if (lo < 1 || hi > cap || lo > hi)
            return fail(error, where + ": need 1 <= min <= max <= " +
                                   std::to_string(cap));
        out.kind = SizeDist::Kind::Uniform;
        out.minBytes = lo;
        out.maxBytes = hi;
        return true;
    }
    if (kind == "zipf") {
        const Value &sizes = v["sizes"];
        if (!sizes.isArray() || sizes.size() == 0)
            return fail(error,
                        where + ".sizes must be a non-empty array");
        out.zipfSizes.clear();
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const Value &s = sizes[i];
            if (!s.isNumber() || s.asNumber() < 1 ||
                s.asNumber() > static_cast<double>(cap) ||
                s.asNumber() != std::floor(s.asNumber())) {
                return fail(error, where + ".sizes[" + std::to_string(i) +
                                       "] must be an integer in [1, " +
                                       std::to_string(cap) +
                                       "]");
            }
            out.zipfSizes.push_back(static_cast<Addr>(s.asNumber()));
        }
        if (v.has("exponent")) {
            if (!v["exponent"].isNumber() ||
                v["exponent"].asNumber() <= 0.0)
                return fail(error, where + ".exponent must be > 0");
            out.zipfExponent = v["exponent"].asNumber();
        }
        out.kind = SizeDist::Kind::Zipf;
        return true;
    }
    return fail(error, where + ".kind must be fixed|uniform|zipf");
}

bool
parseInterval(const Value &v, IntervalDist &out, const std::string &where,
              std::string *error)
{
    if (!v.isObject())
        return fail(error, where + " must be an object");
    if (!checkKeys(v, {"kind", "us", "min_us", "max_us"}, where, error))
        return false;
    std::string kind;
    if (!getString(v, "kind", kind, true, where, error))
        return false;
    if (kind == "fixed") {
        out.kind = IntervalDist::Kind::Fixed;
        return getUint(v, "us", out.fixedUs, true, where, error);
    }
    if (kind == "uniform") {
        if (!getUint(v, "min_us", out.minUs, true, where, error) ||
            !getUint(v, "max_us", out.maxUs, true, where, error))
            return false;
        if (out.minUs > out.maxUs)
            return fail(error, where + ": need min_us <= max_us");
        out.kind = IntervalDist::Kind::Uniform;
        return true;
    }
    return fail(error, where + ".kind must be fixed|uniform");
}

bool
parsePacing(const Value &v, Pacing &out, const std::string &where,
            std::string *error)
{
    if (v.isNull())
        return true;    // keep closed-loop zero-think default
    if (!v.isObject())
        return fail(error, where + " must be an object");
    if (!checkKeys(v, {"kind", "think_us", "interval"}, where, error))
        return false;
    std::string kind;
    if (!getString(v, "kind", kind, true, where, error))
        return false;
    if (kind == "closed") {
        out.kind = Pacing::Kind::Closed;
        return getUint(v, "think_us", out.thinkUs, false, where, error);
    }
    if (kind == "open") {
        out.kind = Pacing::Kind::Open;
        if (!v.has("interval"))
            return fail(error, where + ": open pacing needs 'interval'");
        return parseInterval(v["interval"], out.interval,
                             where + ".interval", error);
    }
    return fail(error, where + ".kind must be closed|open");
}

bool
parseScheduler(const Value &v, SchedulerSpec &out,
               const std::string &where, std::string *error)
{
    if (v.isNull())
        return true;    // round-robin @ 100 us default
    if (!v.isObject())
        return fail(error, where + " must be an object");
    if (!checkKeys(v, {"kind", "quantum_us", "max_slice"}, where, error))
        return false;
    std::string kind;
    if (!getString(v, "kind", kind, true, where, error))
        return false;
    if (kind == "round-robin") {
        out.kind = SchedulerSpec::Kind::RoundRobin;
        if (!getUint(v, "quantum_us", out.quantumUs, false, where, error))
            return false;
        if (out.quantumUs < 1)
            return fail(error, where + ".quantum_us must be >= 1");
        return true;
    }
    if (kind == "random") {
        out.kind = SchedulerSpec::Kind::Random;
        if (!getUint(v, "max_slice", out.maxSlice, false, where, error))
            return false;
        if (out.maxSlice < 1)
            return fail(error, where + ".max_slice must be >= 1");
        return true;
    }
    return fail(error, where + ".kind must be round-robin|random");
}

bool
parseIotlb(const Value &v, IotlbSpec &out, const std::string &where,
           std::string *error)
{
    if (v.isNull())
        return true;    // no IOMMU (the byte-identical baseline)
    if (!v.isObject())
        return fail(error, where + " must be an object");
    if (!checkKeys(v,
                   {"entries", "ways", "hit_cycles", "miss_cycles",
                    "walk_cycles", "pinning", "pin_budget_pages", "fault"},
                   where, error))
        return false;

    std::uint64_t entries = out.entries, ways = out.ways;
    if (!getUint(v, "entries", entries, false, where, error) ||
        !getUint(v, "ways", ways, false, where, error))
        return false;
    if (entries < 1 || entries > 4096)
        return fail(error, where + ".entries must be in [1, 4096]");
    if (ways < 1 || ways > entries)
        return fail(error, where + ".ways must be in [1, entries]");
    out.entries = static_cast<unsigned>(entries);
    out.ways = static_cast<unsigned>(ways);

    if (!getUint(v, "hit_cycles", out.hitCycles, false, where, error) ||
        !getUint(v, "miss_cycles", out.missCycles, false, where, error) ||
        !getUint(v, "walk_cycles", out.walkCycles, false, where, error) ||
        !getUint(v, "pin_budget_pages", out.pinBudgetPages, false, where,
                 error))
        return false;

    if (!getString(v, "pinning", out.pinning, false, where, error))
        return false;
    if (out.pinning != "on-map" && out.pinning != "on-demand")
        return fail(error, where + ".pinning must be on-map|on-demand");
    if (!getString(v, "fault", out.fault, false, where, error))
        return false;
    if (out.fault != "abort" && out.fault != "trap")
        return fail(error, where + ".fault must be abort|trap");

    out.enabled = true;
    return true;
}

bool
parseCap(const Value &v, CapSpec &out, const std::string &where,
         std::string *error)
{
    if (v.isNull())
        return true;    // engine-default geometry
    if (!v.isObject())
        return fail(error, where + " must be an object");
    if (!checkKeys(v,
                   {"slots", "spans_per_slot", "rate_classes",
                    "check_cycles"},
                   where, error))
        return false;

    std::uint64_t slots = out.slots, spans = out.spansPerSlot;
    std::uint64_t classes = out.rateClasses;
    if (!getUint(v, "slots", slots, false, where, error) ||
        !getUint(v, "spans_per_slot", spans, false, where, error) ||
        !getUint(v, "rate_classes", classes, false, where, error) ||
        !getUint(v, "check_cycles", out.checkCycles, false, where, error))
        return false;
    // The capword's slot field is 8 bits (capfield::slotBits).
    if (slots < 1 || slots > 256)
        return fail(error, where + ".slots must be in [1, 256]");
    if (spans < 1 || spans > 64)
        return fail(error, where + ".spans_per_slot must be in [1, 64]");
    if (classes < 1 || classes > 8)
        return fail(error, where + ".rate_classes must be in [1, 8]");
    out.slots = static_cast<unsigned>(slots);
    out.spansPerSlot = static_cast<unsigned>(spans);
    out.rateClasses = static_cast<unsigned>(classes);

    out.enabled = true;
    return true;
}

bool
parseStream(const Value &v, unsigned num_nodes, bool iommu,
            unsigned rate_classes, StreamSpec &out,
            const std::string &where, std::string *error)
{
    if (!v.isObject())
        return fail(error, where + " must be an object");
    if (!checkKeys(v,
                   {"name", "count", "node", "protocol", "adversarial",
                    "initiations", "ops", "size", "pacing", "slots",
                    "remote_node", "queue_depth", "sg_buffer",
                    "rate_class"},
                   where, error))
        return false;

    if (!getString(v, "name", out.name, true, where, error))
        return false;
    if (out.name.empty())
        return fail(error, where + ".name must be non-empty");

    std::uint64_t count = 1, node = 0, slots = 8;
    if (!getUint(v, "count", count, false, where, error) ||
        !getUint(v, "node", node, false, where, error) ||
        !getUint(v, "slots", slots, false, where, error))
        return false;
    if (count < 1 || count > 64)
        return fail(error, where + ".count must be in [1, 64]");
    if (node >= num_nodes)
        return fail(error, where + ".node out of range");
    if (slots < 1 || slots > 64)
        return fail(error, where + ".slots must be in [1, 64]");
    out.count = static_cast<unsigned>(count);
    out.node = static_cast<NodeId>(node);
    out.slots = static_cast<unsigned>(slots);

    std::string protocol;
    if (!getString(v, "protocol", protocol, true, where, error))
        return false;
    if (!parseMethodName(protocol, out.method))
        return fail(error, where + ".protocol: unknown protocol '" +
                               protocol + "'");

    if (v.has("adversarial")) {
        if (!v["adversarial"].isBool())
            return fail(error, where + ".adversarial must be a bool");
        out.adversarial = v["adversarial"].asBool();
    }

    if (out.adversarial) {
        for (const char *member : {"initiations", "size", "pacing",
                                   "remote_node"}) {
            if (v.has(member))
                return fail(error, where + "." + member +
                                       " not valid on an adversarial "
                                       "stream");
        }
        std::uint64_t ops = out.ops;
        if (!getUint(v, "ops", ops, false, where, error))
            return false;
        if (ops < 1)
            return fail(error, where + ".ops must be >= 1");
        out.ops = static_cast<unsigned>(ops);
        return true;
    }

    if (v.has("ops"))
        return fail(error,
                    where + ".ops only valid on an adversarial stream");
    std::uint64_t initiations = 0;
    if (!getUint(v, "initiations", initiations, true, where, error))
        return false;
    if (initiations < 1)
        return fail(error, where + ".initiations must be >= 1");
    out.initiations = static_cast<unsigned>(initiations);

    if (v.has("queue_depth")) {
        if (out.method != DmaMethod::Ring)
            return fail(error, where + ".queue_depth only valid on a "
                                       "ring-protocol stream");
        std::uint64_t depth = 1;
        if (!getUint(v, "queue_depth", depth, true, where, error))
            return false;
        if (depth < 1 || depth > 64)
            return fail(error,
                        where + ".queue_depth must be in [1, 64]");
        out.queueDepth = static_cast<unsigned>(depth);
    }

    if (v.has("sg_buffer")) {
        if (out.method != DmaMethod::Ring)
            return fail(error, where + ".sg_buffer only valid on a "
                                       "ring-protocol stream");
        if (!iommu)
            return fail(error, where + ".sg_buffer needs the scenario's "
                                       "'iotlb' member (the engine "
                                       "scatter-gathers only through the "
                                       "IOMMU)");
        std::uint64_t pages = 1;
        if (!getUint(v, "sg_buffer", pages, true, where, error))
            return false;
        if (pages < 1 || pages > 8)
            return fail(error, where + ".sg_buffer must be in [1, 8]");
        out.sgPages = static_cast<unsigned>(pages);
    }

    if (v.has("rate_class")) {
        if (out.method != DmaMethod::Cap)
            return fail(error, where + ".rate_class only valid on a "
                                       "cap-protocol stream");
        std::uint64_t rate = 0;
        if (!getUint(v, "rate_class", rate, true, where, error))
            return false;
        if (rate >= rate_classes)
            return fail(error, where + ".rate_class must be < " +
                                   std::to_string(rate_classes));
        out.rateClass = static_cast<unsigned>(rate);
    }

    // The engine caps one user transfer at a page; a scatter-gather
    // buffer lifts the cap to its page count (docs/IOMMU.md).
    const Addr size_cap = Addr(out.sgPages) * maxTransferBytes;
    if (!parseSize(v["size"], out.size, size_cap, where + ".size",
                   error) ||
        !parsePacing(v["pacing"], out.pacing, where + ".pacing", error))
        return false;

    if (v.has("remote_node")) {
        std::uint64_t remote = 0;
        if (!getUint(v, "remote_node", remote, true, where, error))
            return false;
        if (remote >= num_nodes)
            return fail(error, where + ".remote_node out of range");
        if (remote == out.node)
            return fail(error,
                        where + ".remote_node must differ from node");
        out.remoteNode = static_cast<int>(remote);
    }
    return true;
}

} // namespace

const char *
methodName(DmaMethod method)
{
    switch (method) {
      case DmaMethod::Kernel: return "kernel";
      case DmaMethod::Shrimp1: return "shrimp1";
      case DmaMethod::Shrimp2: return "shrimp2";
      case DmaMethod::Flash: return "flash";
      case DmaMethod::PalCode: return "pal";
      case DmaMethod::KeyBased: return "key-based";
      case DmaMethod::ExtShadow: return "ext-shadow";
      case DmaMethod::Repeated3: return "repeated3";
      case DmaMethod::Repeated4: return "repeated4";
      case DmaMethod::Repeated5: return "repeated5";
      case DmaMethod::Ring: return "ring";
      case DmaMethod::Cap: return "cap";
    }
    return "?";
}

bool
parseMethodName(const std::string &name, DmaMethod &out)
{
    for (DmaMethod method : allMethods) {
        if (name == methodName(method)) {
            out = method;
            return true;
        }
    }
    // Not in allMethods (paper-order sweeps stay paper-only), but a
    // legal scenario protocol.
    if (name == "ring") {
        out = DmaMethod::Ring;
        return true;
    }
    if (name == "cap") {
        out = DmaMethod::Cap;
        return true;
    }
    return false;
}

bool
parseScenario(const std::string &text, Scenario &out, std::string *error)
{
    std::string parse_error;
    const Value doc = json::parse(text, &parse_error);
    if (!parse_error.empty())
        return fail(error, "JSON parse error: " + parse_error);
    if (!doc.isObject())
        return fail(error, "scenario root must be an object");
    if (!checkKeys(doc,
                   {"schema", "name", "description", "nodes", "bus",
                    "cpu_mhz", "syscall_cycles", "scheduler", "iotlb",
                    "capability", "limit_us", "streams"},
                   "scenario", error))
        return false;

    std::string schema;
    if (!getString(doc, "schema", schema, true, "scenario", error))
        return false;
    if (schema != "uldma-scenario-v1")
        return fail(error, "schema must be 'uldma-scenario-v1', got '" +
                               schema + "'");

    Scenario scenario;
    if (!getString(doc, "name", scenario.name, true, "scenario", error))
        return false;
    if (scenario.name.empty())
        return fail(error, "scenario.name must be non-empty");
    if (!getString(doc, "description", scenario.description, false,
                   "scenario", error))
        return false;

    std::uint64_t nodes = 1;
    if (!getUint(doc, "nodes", nodes, false, "scenario", error))
        return false;
    if (nodes < 1 || nodes > 4)
        return fail(error, "scenario.nodes must be in [1, 4] (the NIC "
                           "window region supports 4 nodes)");
    scenario.nodes = static_cast<unsigned>(nodes);

    if (!getString(doc, "bus", scenario.bus, false, "scenario", error))
        return false;
    if (scenario.bus != "tc" && scenario.bus != "pci33" &&
        scenario.bus != "pci66")
        return fail(error, "scenario.bus must be tc|pci33|pci66");

    if (!getUint(doc, "cpu_mhz", scenario.cpuMhz, false, "scenario",
                 error))
        return false;
    if (scenario.cpuMhz < 1)
        return fail(error, "scenario.cpu_mhz must be >= 1");

    std::uint64_t syscall_cycles = scenario.syscallCycles;
    if (!getUint(doc, "syscall_cycles", syscall_cycles, false, "scenario",
                 error))
        return false;
    if (syscall_cycles < 1)
        return fail(error, "scenario.syscall_cycles must be >= 1");
    scenario.syscallCycles = syscall_cycles;

    if (!parseScheduler(doc["scheduler"], scenario.scheduler,
                        "scenario.scheduler", error))
        return false;

    if (!parseIotlb(doc["iotlb"], scenario.iotlb, "scenario.iotlb",
                    error))
        return false;

    if (!parseCap(doc["capability"], scenario.cap, "scenario.capability",
                  error))
        return false;

    if (!getUint(doc, "limit_us", scenario.limitUs, false, "scenario",
                 error))
        return false;
    if (scenario.limitUs < 1)
        return fail(error, "scenario.limit_us must be >= 1");

    const Value &streams = doc["streams"];
    if (!streams.isArray() || streams.size() == 0)
        return fail(error, "scenario.streams must be a non-empty array");
    for (std::size_t i = 0; i < streams.size(); ++i) {
        StreamSpec spec;
        if (!parseStream(streams[i], scenario.nodes,
                         scenario.iotlb.enabled, scenario.cap.rateClasses,
                         spec, "streams[" + std::to_string(i) + "]",
                         error))
            return false;
        for (const StreamSpec &prior : scenario.streams) {
            if (prior.name == spec.name)
                return fail(error, "streams[" + std::to_string(i) +
                                       "]: duplicate stream name '" +
                                       spec.name + "'");
        }
        scenario.streams.push_back(std::move(spec));
    }

    // Surface per-node engine-mode conflicts at parse time.
    std::vector<std::vector<DmaMethod>> per_node;
    if (!deriveNodeMethods(scenario, per_node, error))
        return false;

    out = std::move(scenario);
    return true;
}

bool
loadScenarioFile(const std::string &path, Scenario &out,
                 std::string *error)
{
    std::ifstream in(path);
    if (!in)
        return fail(error, path + ": cannot open");
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseScenario(ss.str(), out, error);
}

bool
deriveNodeMethods(const Scenario &scenario,
                  std::vector<std::vector<DmaMethod>> &per_node,
                  std::string *error)
{
    per_node.assign(scenario.nodes, {});
    for (const StreamSpec &stream : scenario.streams) {
        if (stream.method == DmaMethod::Kernel)
            continue;    // the kernel channel works in any engine mode
        auto &methods = per_node.at(stream.node);
        const EngineMode mode = engineModeFor(stream.method);
        for (DmaMethod prior : methods) {
            if (engineModeFor(prior) != mode) {
                return fail(
                    error,
                    "streams '" + stream.name + "': protocol " +
                        methodName(stream.method) + " needs engine mode " +
                        toString(mode) + " but node " +
                        std::to_string(stream.node) + " already runs " +
                        toString(engineModeFor(prior)) + " (for " +
                        methodName(prior) + ") — put them on different "
                        "nodes");
            }
        }
        if (std::find(methods.begin(), methods.end(), stream.method) ==
            methods.end())
            methods.push_back(stream.method);
    }
    return true;
}

} // namespace uldma::workload
