/**
 * @file
 * Shard planning for parallel workload execution: partition a
 * scenario's node set into independent shards — connected components
 * of the graph whose edges are the cross-node dependencies streams
 * create (`node` -> `remote_node`) — and derive, per shard, a
 * self-contained sub-scenario with locally renumbered nodes plus the
 * local<->global maps the runner needs to keep seed derivation and
 * output naming global.
 *
 * The plan is a pure function of the scenario: it never depends on
 * the thread count, which is what makes `--threads N` byte-identical
 * to `--threads 1` by construction (threads only size the worker pool
 * that executes a fixed plan).
 */

#ifndef ULDMA_WORKLOAD_SHARD_HH
#define ULDMA_WORKLOAD_SHARD_HH

#include <cstddef>
#include <vector>

#include "workload/scenario.hh"

namespace uldma::workload {

/** One independent unit of simulation: a node subset no stream links
 *  to the rest of the scenario, plus every stream living on it. */
struct Shard
{
    /** Plan-order index (shards are ordered by smallest member node). */
    unsigned id = 0;
    /** Member nodes as global scenario ids, ascending; local node i of
     *  @ref scenario is global node nodes[i]. */
    std::vector<unsigned> nodes;
    /** Member streams as global indices into Scenario::streams,
     *  ascending; local stream j of @ref scenario is global
     *  streams[j]. */
    std::vector<std::size_t> streams;
    /** Self-contained sub-scenario: global fields copied, nodes
     *  renumbered 0..nodes.size()-1, stream node/remote_node remapped
     *  to local ids. */
    Scenario scenario;
};

/** The whole partition, plus reverse maps for merging. */
struct ShardPlan
{
    std::vector<Shard> shards;
    /** Global node id -> owning shard id. */
    std::vector<unsigned> shardOfNode;
    /** Global node id -> local node id within its shard. */
    std::vector<unsigned> localOfNode;
};

/**
 * Partition @p scenario.  Every node lands in exactly one shard (a
 * node with no streams forms — or joins — a shard like any other);
 * two nodes share a shard iff a chain of stream `remote_node` edges
 * connects them.  Deterministic and thread-count independent.
 */
ShardPlan planShards(const Scenario &scenario);

} // namespace uldma::workload

#endif // ULDMA_WORKLOAD_SHARD_HH
