#include "workload/generator.hh"

#include "core/attack.hh"
#include "workload/prng.hh"

namespace uldma::workload {

namespace {

/**
 * Build one worker replica's program: slots × pageSize source and
 * destination regions (destination possibly a remote window), then
 * the paced initiation loop.
 */
Program
buildWorker(Machine &machine, const Scenario &scenario,
            const StreamSpec &spec, Kernel &kernel, Process &proc,
            Random &size_rng, Random &pace_rng, StreamRuntime &runtime)
{
    DmaMethod method = spec.method;
    if (method == DmaMethod::Ring) {
        // Size the ring to the stream's queue depth so one doorbell
        // drains exactly one batch (docs/RING.md).
        if (!kernel.setupRing(proc, spec.queueDepth,
                              ringdesc::policyPolling)) {
            method = DmaMethod::Kernel;
            ++runtime.kernelFallbacks;
        }
    } else if (!prepareProcess(kernel, proc, method)) {
        // Contexts exhausted: this replica degrades to the kernel
        // channel, exactly the fallback §3.2 prescribes.
        method = DmaMethod::Kernel;
        ++runtime.kernelFallbacks;
    }

    // Slot stride: sg streams cycle through multi-page buffers.
    const Addr stride = Addr(spec.sgPages) * pageSize;
    const Addr region = Addr(spec.slots) * stride;
    const Addr src = kernel.allocate(proc, region, Rights::ReadWrite);
    kernel.createShadowMappings(proc, src, region);

    Addr dst;
    if (spec.remoteNode >= 0) {
        Kernel &remote =
            machine.node(static_cast<NodeId>(spec.remoteNode)).kernel();
        const Addr frames = remote.allocFrames(spec.slots);
        dst = kernel.mapRemoteWindow(proc,
                                     static_cast<NodeId>(spec.remoteNode),
                                     frames, region, Rights::ReadWrite);
    } else {
        dst = kernel.allocate(proc, region, Rights::ReadWrite);
    }
    kernel.createShadowMappings(proc, dst, region);

    if (method == DmaMethod::Ring) {
        const DmaEngine &engine = machine.node(spec.node).dmaEngine();
        if (engine.iommu() != nullptr) {
            // IOMMU mode: descriptors carry virtual addresses, so the
            // buffers go into the process's I/O page table instead of
            // the kernel's physical-frame table.  Under on-demand
            // pinning the first device access pins (docs/IOMMU.md).
            const bool pin = engine.iommu()->params().pinPolicy ==
                             PinPolicy::OnMap;
            kernel.iommuMapRange(proc, src, region, pin);
            kernel.iommuMapRange(proc, dst, region, pin);
        } else {
            kernel.authorizeRingDma(proc, src, region);
            kernel.authorizeRingDma(proc, dst, region);
        }
    }

    if (method == DmaMethod::Cap) {
        // One slot covers both buffers: the grant walks src's frames,
        // the extension widens the same slot over dst.  Slot or span
        // exhaustion degrades to the kernel channel like every other
        // fallback (the reaper reclaims the slot at process exit).
        const int slot = kernel.capGrant(proc, src, region,
                                         spec.rateClass);
        if (slot < 0 ||
            !kernel.capExtend(proc, static_cast<unsigned>(slot), dst,
                              region)) {
            method = DmaMethod::Kernel;
            ++runtime.kernelFallbacks;
        }
    }

    if (method == DmaMethod::Shrimp1) {
        for (unsigned s = 0; s < spec.slots; ++s) {
            kernel.setupMapOut(
                proc, src + Addr(s) * pageSize,
                kernel.translateFor(proc, dst + Addr(s) * pageSize,
                                    Rights::Write)
                    .paddr);
        }
    }

    StreamRuntime *rt = &runtime;
    Program prog;
    std::vector<RingTransfer> batch;
    for (unsigned i = 0; i < spec.initiations; ++i) {
        const unsigned s = i % spec.slots;
        const Addr size = sampleSize(spec.size, size_rng);

        if (spec.pacing.kind == Pacing::Kind::Open) {
            const std::uint64_t gap_us =
                sampleIntervalUs(spec.pacing.interval, pace_rng);
            if (gap_us > 0)
                prog.compute(gap_us * scenario.cpuMhz);
        }

        if (method == DmaMethod::Ring) {
            // Ring streams batch queueDepth descriptors per doorbell;
            // the wait + status check happen once per batch.
            batch.push_back({src + Addr(s) * stride,
                             dst + Addr(s) * stride, size});
            ++runtime.issued;
            runtime.offeredBytes += size;
            if (batch.size() < spec.queueDepth &&
                i + 1 < spec.initiations)
                continue;
            emitRingBatch(prog, kernel, proc, batch);
            batch.clear();
        } else {
            emitInitiation(prog, kernel, proc, method,
                           src + Addr(s) * pageSize,
                           dst + Addr(s) * pageSize, size);
            ++runtime.issued;
            runtime.offeredBytes += size;
        }
        prog.callback([rt](ExecContext &ctx) {
            if (ctx.reg(reg::v0) == dmastatus::failure)
                ++rt->failures;
        });
        prog.membar();

        if (spec.pacing.kind == Pacing::Kind::Closed &&
            spec.pacing.thinkUs > 0)
            prog.compute(spec.pacing.thinkUs * scenario.cpuMhz);
    }
    prog.exit();
    return prog;
}

/**
 * Build one adversarial replica: two owned, shadow-mapped pages and
 * the attack harness's access mix over them.  Replica 0 plays the
 * hijacker (figure-5 strategy); the rest issue the random mix.
 */
Program
buildAdversary(const StreamSpec &spec, Kernel &kernel, Process &proc,
               Random &adv_rng, StreamRuntime &runtime, bool hijacker)
{
    const Addr page1 = kernel.allocate(proc, pageSize, Rights::ReadWrite);
    const Addr page2 = kernel.allocate(proc, pageSize, Rights::ReadWrite);
    kernel.createShadowMappings(proc, page1, pageSize);
    kernel.createShadowMappings(proc, page2, pageSize);

    Program prog;
    appendAdversarialOps(prog, kernel, proc, page1, page2,
                         /*shared_readonly_vaddr=*/0, adv_rng, spec.ops,
                         hijacker);
    prog.exit();
    runtime.adversarialOps += spec.ops;
    return prog;
}

} // namespace

void
spawnStream(Machine &machine, const Scenario &scenario,
            const StreamSpec &spec, std::uint64_t stream_index,
            std::uint64_t seed, StreamRuntime &runtime)
{
    runtime.spec = &spec;
    Kernel &kernel = machine.node(spec.node).kernel();

    // All replicas of a stream share its RNGs; draws happen in replica
    // order at build time, so the sequence is seed-deterministic.
    Random size_rng(streamSeed(seed, stream_index, SeedPurpose::Sizes));
    Random pace_rng(streamSeed(seed, stream_index, SeedPurpose::Pacing));
    Random adv_rng(
        streamSeed(seed, stream_index, SeedPurpose::Adversarial));

    for (unsigned r = 0; r < spec.count; ++r) {
        const std::string name =
            spec.count == 1 ? spec.name
                            : spec.name + "." + std::to_string(r);
        kernel.spawn(name, [&](Process &proc) {
            if (spec.adversarial) {
                return buildAdversary(spec, kernel, proc, adv_rng,
                                      runtime, /*hijacker=*/r == 0);
            }
            return buildWorker(machine, scenario, spec, kernel, proc,
                               size_rng, pace_rng, runtime);
        });
    }
}

} // namespace uldma::workload
