/**
 * @file
 * Hierarchical scoped profiler for the simulator's own hot paths.
 *
 * Usage: drop ULDMA_PROF_SCOPE("name") at the top of a function or
 * block.  While capture is disabled (the default) each scope costs one
 * predictable branch on a thread-local bool — no allocation, no clock
 * read, no string handling — so instrumentation can stay in the hot
 * loop permanently, mirroring the ULDMA_TRACE_EVENT discipline.
 *
 * While enabled, scopes aggregate *at record time* into a per-thread
 * call tree keyed by the nesting path of scope names: each tree node
 * accumulates an entry count, inclusive host nanoseconds, and inclusive
 * simulated ticks (when a tick source is registered, which Machine::run
 * does for the duration of the run).  There is no per-entry event log,
 * so capture cost and memory stay O(distinct scopes), not O(entries),
 * and a multi-hour run profiles in constant space.
 *
 * Exports:
 *  - writeProfileJson(): the `uldma-profile-v1` document.  By default
 *    it contains only deterministic fields (names, counts, simulated
 *    ticks) so identical runs produce identical bytes — the repo-wide
 *    artifact rule.  Host wall-time attribution is opt-in via
 *    ProfileWriteOptions::includeHost.
 *  - writeCollapsedProfile(): Brendan-Gregg collapsed-stack text
 *    ("a;b;c <weight>") for flamegraph.pl / speedscope.
 *
 * Thread model: the profiler is thread-local, like trace::eventRing().
 * Each workload shard captures into its own tree; mergeProfiles() folds
 * the shard trees deterministically (plan order, first-appearance child
 * order) so `--threads 1` and `--threads N` produce identical merged
 * documents.
 */

#ifndef ULDMA_PROF_PROFILER_HH
#define ULDMA_PROF_PROFILER_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "util/types.hh"

namespace uldma::prof {

/**
 * One node of an exported (or merged) profile call tree.  `hostNs` and
 * `ticks` are *inclusive*; exclusive values are derived at export time
 * as inclusive minus the sum over children.
 */
struct ProfileNode
{
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t hostNs = 0;
    std::uint64_t ticks = 0;
    std::vector<ProfileNode> children;
};

/**
 * Per-thread scoped profiler.  Use the thread-local instance returned
 * by profiler(); never share one across threads.
 */
class Profiler
{
  public:
    /** Drop any previous capture and start recording scopes. */
    void enable();

    /** Stop recording and release all storage. */
    void disable();

    bool enabled() const { return enabled_; }

    /** Drop captured data but keep recording. */
    void clear();

    /**
     * Register a source of simulated time so scopes can attribute
     * ticks as well as host time.  Machine::run() installs itself for
     * the duration of the run; while no source is set, tick deltas
     * record as zero.
     */
    void setTickSource(std::function<Tick()> source);
    void clearTickSource();

    /** Total scope entries recorded since enable()/clear(). */
    std::uint64_t scopesEntered() const { return entered_; }

    /** Enter a scope (internal; use ULDMA_PROF_SCOPE). */
    void enter(const char *name);

    /** Exit the innermost scope (internal; use ULDMA_PROF_SCOPE). */
    void exit();

    /**
     * Copy out the aggregated tree.  The returned root is a synthetic
     * node (empty name) whose children are the top-level scopes.
     * Scopes still open at snapshot time contribute their completed
     * entries only.
     */
    ProfileNode snapshot() const;

  private:
    struct NodeRec
    {
        std::string name;
        std::uint64_t count = 0;
        std::uint64_t hostNs = 0;
        std::uint64_t ticks = 0;
        std::vector<std::uint32_t> children;  // indices into nodes_
    };

    struct Frame
    {
        std::uint32_t node = 0;
        std::uint64_t startNs = 0;
        Tick startTick = 0;
    };

    std::uint32_t childOf(std::uint32_t parent, const char *name);

    bool enabled_ = false;
    std::vector<NodeRec> nodes_;  // [0] is the synthetic root
    std::vector<Frame> stack_;
    std::function<Tick()> tickSource_;
    std::uint64_t entered_ = 0;
};

/** The calling thread's profiler, used by ULDMA_PROF_SCOPE. */
Profiler &profiler();

namespace detail { extern thread_local bool profCaptureEnabled; }

/** Cheap thread-local gate checked before any scope bookkeeping. */
inline bool
captureOn()
{
    return detail::profCaptureEnabled;
}

/**
 * RAII scope used by ULDMA_PROF_SCOPE.  Latches the capture gate at
 * construction so an enable()/disable() inside the scope cannot
 * unbalance the stack.
 */
class ScopeGuard
{
  public:
    explicit ScopeGuard(const char *name) : active_(captureOn())
    {
        if (active_)
            profiler().enter(name);
    }

    ~ScopeGuard()
    {
        if (active_)
            profiler().exit();
    }

    ScopeGuard(const ScopeGuard &) = delete;
    ScopeGuard &operator=(const ScopeGuard &) = delete;

  private:
    bool active_;
};

/**
 * RAII tick-source registration: installs @p source on the calling
 * thread's profiler if capture is on, restores the previous state on
 * destruction (on every exit path).
 */
class TickSourceScope
{
  public:
    explicit TickSourceScope(std::function<Tick()> source)
        : active_(captureOn())
    {
        if (active_)
            profiler().setTickSource(std::move(source));
    }

    ~TickSourceScope()
    {
        if (active_)
            profiler().clearTickSource();
    }

    TickSourceScope(const TickSourceScope &) = delete;
    TickSourceScope &operator=(const TickSourceScope &) = delete;

  private:
    bool active_;
};

/** Options for writeProfileJson(). */
struct ProfileWriteOptions
{
    /**
     * Include inclusive_ns/exclusive_ns host wall-time members.
     * Off by default: host time varies run to run, and the default
     * document must be byte-deterministic.
     */
    bool includeHost = false;
    bool pretty = true;
};

/**
 * Serialise a profile tree as one `uldma-profile-v1` document.  The
 * tree is emitted depth-first in capture order; exclusive values are
 * derived as inclusive minus the children's inclusive sum (clamped at
 * zero).
 */
void writeProfileJson(std::ostream &os, const ProfileNode &root,
                      const ProfileWriteOptions &options = {});

/**
 * Serialise as collapsed-stack text, one line per tree node:
 * "top;nested;leaf <weight>".  Weight is exclusive host nanoseconds
 * when @p host_weight is set, else the node's entry count (the
 * deterministic choice).  Zero-weight lines are omitted.
 */
void writeCollapsedProfile(std::ostream &os, const ProfileNode &root,
                           bool host_weight = false);

/** One shard's captured profile, for merged export. */
struct ShardProfile
{
    unsigned shard = 0;
    ProfileNode root;
};

/**
 * Fold several trees into one by summing nodes with the same name
 * path.  Children keep first-appearance order across the inputs in
 * the order given, so merging shard profiles in plan order yields the
 * same document regardless of how many worker threads produced them.
 */
ProfileNode mergeProfiles(const std::vector<ProfileNode> &roots);

} // namespace uldma::prof

#define ULDMA_PROF_CONCAT2(a, b) a##b
#define ULDMA_PROF_CONCAT(a, b) ULDMA_PROF_CONCAT2(a, b)

/**
 * Profile the enclosing scope under @p name.  One branch when capture
 * is off; safe to leave in hot paths permanently.
 */
#define ULDMA_PROF_SCOPE(name)                                              \
    ::uldma::prof::ScopeGuard ULDMA_PROF_CONCAT(uldma_prof_scope_,          \
                                                __COUNTER__)(name)

#endif // ULDMA_PROF_PROFILER_HH
