#include "prof/profiler.hh"

#include <algorithm>
#include <chrono>

#include "sim/json.hh"
#include "util/logging.hh"

namespace uldma::prof {

namespace detail { thread_local bool profCaptureEnabled = false; }

namespace {

std::uint64_t
hostNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

Profiler &
profiler()
{
    static thread_local Profiler instance;
    return instance;
}

void
Profiler::enable()
{
    clear();
    enabled_ = true;
    detail::profCaptureEnabled = true;
}

void
Profiler::disable()
{
    enabled_ = false;
    detail::profCaptureEnabled = false;
    nodes_.clear();
    nodes_.shrink_to_fit();
    stack_.clear();
    stack_.shrink_to_fit();
    entered_ = 0;
}

void
Profiler::clear()
{
    nodes_.clear();
    nodes_.resize(1);  // synthetic root
    stack_.clear();
    entered_ = 0;
}

void
Profiler::setTickSource(std::function<Tick()> source)
{
    tickSource_ = std::move(source);
}

void
Profiler::clearTickSource()
{
    tickSource_ = nullptr;
}

std::uint32_t
Profiler::childOf(std::uint32_t parent, const char *name)
{
    // Linear scan: instrumented call trees are shallow and narrow
    // (tens of distinct scopes), so this beats a hash map on both
    // speed and determinism of child order.
    for (std::uint32_t idx : nodes_[parent].children) {
        if (nodes_[idx].name == name)
            return idx;
    }
    const auto idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(NodeRec{});
    nodes_.back().name = name;
    nodes_[parent].children.push_back(idx);
    return idx;
}

void
Profiler::enter(const char *name)
{
    if (!enabled_)
        return;
    if (nodes_.empty())
        nodes_.resize(1);
    const std::uint32_t parent = stack_.empty() ? 0 : stack_.back().node;
    Frame frame;
    frame.node = childOf(parent, name);
    frame.startNs = hostNowNs();
    frame.startTick = tickSource_ ? tickSource_() : 0;
    stack_.push_back(frame);
    ++entered_;
}

void
Profiler::exit()
{
    if (!enabled_ || stack_.empty())
        return;
    const Frame frame = stack_.back();
    stack_.pop_back();
    NodeRec &rec = nodes_[frame.node];
    ++rec.count;
    const std::uint64_t end_ns = hostNowNs();
    if (end_ns > frame.startNs)
        rec.hostNs += end_ns - frame.startNs;
    if (tickSource_) {
        const Tick end_tick = tickSource_();
        if (end_tick > frame.startTick)
            rec.ticks += end_tick - frame.startTick;
    }
}

ProfileNode
Profiler::snapshot() const
{
    // Recursive copy of the flat arena into the export tree.
    struct Copier
    {
        const std::vector<NodeRec> &nodes;

        ProfileNode
        copy(std::uint32_t idx) const
        {
            const NodeRec &rec = nodes[idx];
            ProfileNode out;
            out.name = rec.name;
            out.count = rec.count;
            out.hostNs = rec.hostNs;
            out.ticks = rec.ticks;
            out.children.reserve(rec.children.size());
            for (std::uint32_t child : rec.children)
                out.children.push_back(copy(child));
            return out;
        }
    };

    if (nodes_.empty())
        return ProfileNode{};
    return Copier{nodes_}.copy(0);
}

namespace {

std::uint64_t
childrenSumNs(const ProfileNode &node)
{
    std::uint64_t sum = 0;
    for (const ProfileNode &child : node.children)
        sum += child.hostNs;
    return sum;
}

std::uint64_t
childrenSumTicks(const ProfileNode &node)
{
    std::uint64_t sum = 0;
    for (const ProfileNode &child : node.children)
        sum += child.ticks;
    return sum;
}

std::uint64_t
exclusiveOf(std::uint64_t inclusive, std::uint64_t children)
{
    return inclusive > children ? inclusive - children : 0;
}

std::uint64_t
totalCount(const ProfileNode &node)
{
    std::uint64_t sum = node.name.empty() ? 0 : node.count;
    for (const ProfileNode &child : node.children)
        sum += totalCount(child);
    return sum;
}

void
writeNode(json::Writer &w, const ProfileNode &node, bool include_host)
{
    w.beginObject();
    w.member("name", node.name);
    w.member("count", node.count);
    w.member("inclusive_ticks", node.ticks);
    w.member("exclusive_ticks",
             exclusiveOf(node.ticks, childrenSumTicks(node)));
    if (include_host) {
        w.member("inclusive_ns", node.hostNs);
        w.member("exclusive_ns",
                 exclusiveOf(node.hostNs, childrenSumNs(node)));
    }
    w.key("children");
    w.beginArray();
    for (const ProfileNode &child : node.children)
        writeNode(w, child, include_host);
    w.endArray();
    w.endObject();
}

} // namespace

void
writeProfileJson(std::ostream &os, const ProfileNode &root,
                 const ProfileWriteOptions &options)
{
    json::Writer w(os, options.pretty);
    w.beginObject();
    w.member("schema", "uldma-profile-v1");
    w.member("scopes", totalCount(root));
    w.member("host_time", options.includeHost);
    w.key("tree");
    w.beginArray();
    for (const ProfileNode &child : root.children)
        writeNode(w, child, options.includeHost);
    w.endArray();
    w.endObject();
    os << "\n";
}

namespace {

void
writeCollapsedNode(std::ostream &os, const ProfileNode &node,
                   const std::string &prefix, bool host_weight)
{
    const std::string path =
        prefix.empty() ? node.name : prefix + ";" + node.name;
    const std::uint64_t weight = host_weight
        ? exclusiveOf(node.hostNs, childrenSumNs(node))
        : node.count;
    if (weight > 0)
        os << path << " " << weight << "\n";
    for (const ProfileNode &child : node.children)
        writeCollapsedNode(os, child, path, host_weight);
}

} // namespace

void
writeCollapsedProfile(std::ostream &os, const ProfileNode &root,
                      bool host_weight)
{
    for (const ProfileNode &child : root.children)
        writeCollapsedNode(os, child, "", host_weight);
}

namespace {

void
mergeInto(ProfileNode &dst, const ProfileNode &src)
{
    dst.count += src.count;
    dst.hostNs += src.hostNs;
    dst.ticks += src.ticks;
    for (const ProfileNode &src_child : src.children) {
        ProfileNode *match = nullptr;
        for (ProfileNode &dst_child : dst.children) {
            if (dst_child.name == src_child.name) {
                match = &dst_child;
                break;
            }
        }
        if (match) {
            mergeInto(*match, src_child);
        } else {
            dst.children.push_back(src_child);
        }
    }
}

} // namespace

ProfileNode
mergeProfiles(const std::vector<ProfileNode> &roots)
{
    ProfileNode merged;
    for (const ProfileNode &root : roots)
        mergeInto(merged, root);
    return merged;
}

} // namespace uldma::prof
