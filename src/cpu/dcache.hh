/**
 * @file
 * Optional L1 data cache (timing model).
 *
 * Direct-mapped, physically tagged, write-through with
 * no-write-allocate — the simple on-chip data cache of an Alpha
 * 21064-class core.  Data always lives in PhysicalMemory (the cache
 * only decides access *cost*), so functional correctness never
 * depends on it; coherence with DMA and network writes is handled by
 * snooping PhysicalMemory's write-observer channel and invalidating
 * overlapping lines — which is why a polling loop sees fresh data the
 * access after a DMA lands.
 *
 * Disabled by default to keep the Table-1 calibration
 * (CpuParams::cachedMemExtraCycles models the typical hit) — enable
 * via CpuParams::dcache.enabled for cache-sensitive studies.
 */

#ifndef ULDMA_CPU_DCACHE_HH
#define ULDMA_CPU_DCACHE_HH

#include <string>
#include <vector>

#include "mem/physical_memory.hh"
#include "sim/stats.hh"
#include "util/bitfield.hh"
#include "util/types.hh"

namespace uldma {

/** Data-cache geometry and costs. */
struct DcacheParams
{
    bool enabled = false;
    Addr sizeBytes = 16 * 1024;
    Addr lineBytes = 32;
    /** Extra cycles on a hit (beyond the base instruction cost). */
    Cycles hitExtraCycles = 1;
    /** Extra cycles on a read miss (DRAM fill). */
    Cycles missCycles = 24;
    /** Extra cycles for a write (write-through buffer admission). */
    Cycles writeCycles = 2;
};

/**
 * The cache: tag array only; data stays in PhysicalMemory.
 */
class Dcache
{
  public:
    Dcache(std::string name, const DcacheParams &params,
           PhysicalMemory &memory);

    /**
     * Account one CPU access.
     * @return extra cycles beyond the base instruction cost.
     */
    Cycles access(Addr paddr, unsigned size, bool is_write);

    /** Invalidate lines overlapping [paddr, paddr+size). */
    void invalidate(Addr paddr, Addr size);

    /**
     * Scoped suppression of snoop invalidations while the owning CPU
     * performs its own (write-through) store — the store keeps the
     * line coherent, so no invalidation is needed.
     */
    class SelfAccess
    {
      public:
        explicit SelfAccess(Dcache *cache) : cache_(cache)
        {
            if (cache_ != nullptr)
                cache_->suppress_ = true;
        }

        ~SelfAccess()
        {
            if (cache_ != nullptr)
                cache_->suppress_ = false;
        }

        SelfAccess(const SelfAccess &) = delete;
        SelfAccess &operator=(const SelfAccess &) = delete;

      private:
        Dcache *cache_;
    };

    /** Drop every line. */
    void flush();

    const DcacheParams &params() const { return params_; }
    stats::Group &statsGroup() { return statsGroup_; }
    void registerStats(stats::Registry &r) { r.add(&statsGroup_); }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t invalidations() const { return invalidations_.value(); }

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
    };

    Addr lineIndex(Addr paddr) const
    {
        return (paddr / params_.lineBytes) % lines_.size();
    }

    Addr lineTag(Addr paddr) const { return paddr / params_.lineBytes; }

    std::string name_;
    DcacheParams params_;
    std::vector<Line> lines_;
    bool suppress_ = false;

    stats::Group statsGroup_;
    stats::Scalar hits_;
    stats::Scalar misses_;
    stats::Scalar writes_;
    stats::Scalar invalidations_;
};

} // namespace uldma

#endif // ULDMA_CPU_DCACHE_HH
