#include "cpu/program.hh"

#include "util/logging.hh"
#include "util/strutil.hh"

namespace uldma {

int
Program::push(MicroOp op)
{
    ops_.push_back(std::move(op));
    return static_cast<int>(ops_.size()) - 1;
}

int
Program::load(int dst_reg, Addr vaddr, unsigned size)
{
    MicroOp op;
    op.kind = OpKind::Load;
    op.dstReg = dst_reg;
    op.vaddr = vaddr;
    op.size = size;
    return push(op);
}

int
Program::loadIndirect(int dst_reg, int addr_reg, Addr offset, unsigned size)
{
    MicroOp op;
    op.kind = OpKind::Load;
    op.dstReg = dst_reg;
    op.addrReg = addr_reg;
    op.vaddr = offset;
    op.size = size;
    return push(op);
}

int
Program::store(Addr vaddr, std::uint64_t value, unsigned size)
{
    MicroOp op;
    op.kind = OpKind::Store;
    op.vaddr = vaddr;
    op.imm = value;
    op.size = size;
    return push(op);
}

int
Program::storeReg(Addr vaddr, int src_reg, unsigned size)
{
    MicroOp op;
    op.kind = OpKind::Store;
    op.vaddr = vaddr;
    op.srcReg = src_reg;
    op.size = size;
    return push(op);
}

int
Program::storeIndirect(int addr_reg, Addr offset, std::uint64_t value,
                       unsigned size)
{
    MicroOp op;
    op.kind = OpKind::Store;
    op.addrReg = addr_reg;
    op.vaddr = offset;
    op.imm = value;
    op.size = size;
    return push(op);
}

int
Program::storeIndirectReg(int addr_reg, Addr offset, int src_reg,
                          unsigned size)
{
    MicroOp op;
    op.kind = OpKind::Store;
    op.addrReg = addr_reg;
    op.vaddr = offset;
    op.srcReg = src_reg;
    op.size = size;
    return push(op);
}

int
Program::atomicRmw(int dst_reg, Addr vaddr, std::uint64_t value,
                   unsigned size)
{
    MicroOp op;
    op.kind = OpKind::AtomicRmw;
    op.dstReg = dst_reg;
    op.vaddr = vaddr;
    op.imm = value;
    op.size = size;
    return push(op);
}

int
Program::membar()
{
    MicroOp op;
    op.kind = OpKind::Membar;
    return push(op);
}

int
Program::move(int dst_reg, std::uint64_t value)
{
    MicroOp op;
    op.kind = OpKind::Move;
    op.dstReg = dst_reg;
    op.imm = value;
    return push(op);
}

int
Program::addImm(int dst_reg, int src_reg, std::uint64_t value)
{
    MicroOp op;
    op.kind = OpKind::AddImm;
    op.dstReg = dst_reg;
    op.srcReg = src_reg;
    op.imm = value;
    return push(op);
}

int
Program::compute(std::uint64_t cycles)
{
    MicroOp op;
    op.kind = OpKind::Compute;
    op.imm = cycles;
    return push(op);
}

int
Program::branchEq(int src_reg, std::uint64_t value, int target)
{
    MicroOp op;
    op.kind = OpKind::BranchEq;
    op.srcReg = src_reg;
    op.imm = value;
    op.target = target;
    return push(op);
}

int
Program::branchNe(int src_reg, std::uint64_t value, int target)
{
    MicroOp op;
    op.kind = OpKind::BranchNe;
    op.srcReg = src_reg;
    op.imm = value;
    op.target = target;
    return push(op);
}

int
Program::jump(int target)
{
    MicroOp op;
    op.kind = OpKind::Jump;
    op.target = target;
    return push(op);
}

int
Program::syscall(std::uint64_t number)
{
    MicroOp op;
    op.kind = OpKind::Syscall;
    op.imm = number;
    return push(op);
}

int
Program::callPal(std::uint64_t pal_index)
{
    MicroOp op;
    op.kind = OpKind::CallPal;
    op.imm = pal_index;
    return push(op);
}

int
Program::callback(std::function<void(ExecContext &)> hook,
                  std::uint64_t cycles)
{
    MicroOp op;
    op.kind = OpKind::Callback;
    op.hook = std::move(hook);
    op.imm = cycles;
    return push(op);
}

int
Program::yield()
{
    MicroOp op;
    op.kind = OpKind::Yield;
    return push(op);
}

int
Program::exit()
{
    MicroOp op;
    op.kind = OpKind::Exit;
    return push(op);
}

void
Program::setTarget(int op_index, int target)
{
    MicroOp &op = ops_.at(op_index);
    ULDMA_ASSERT(op.kind == OpKind::BranchEq || op.kind == OpKind::BranchNe ||
                 op.kind == OpKind::Jump,
                 "setTarget on a non-branch op");
    op.target = target;
}

Program &
Program::withLabel(std::string label)
{
    ULDMA_ASSERT(!ops_.empty(), "withLabel on empty program");
    ops_.back().label = std::move(label);
    return *this;
}

void
Program::append(const Program &other)
{
    const int base = here();
    for (std::size_t i = 0; i < other.size(); ++i) {
        MicroOp op = other.at(i);
        if (op.target >= 0)
            op.target += base;
        ops_.push_back(std::move(op));
    }
}

namespace {

/** Render a memory operand: [0xADDR] or [rN + 0xOFF]. */
std::string
memOperand(const MicroOp &op)
{
    if (op.addrReg >= 0) {
        return csprintf("[r%d + 0x%llx]", op.addrReg,
                        static_cast<unsigned long long>(op.vaddr));
    }
    return csprintf("[0x%llx]",
                    static_cast<unsigned long long>(op.vaddr));
}

/** Render a data operand: rN or an immediate. */
std::string
dataOperand(const MicroOp &op)
{
    if (op.srcReg >= 0)
        return csprintf("r%d", op.srcReg);
    return csprintf("0x%llx", static_cast<unsigned long long>(op.imm));
}

} // namespace

std::string
Program::disassemble() const
{
    std::string out;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
        const MicroOp &op = ops_[i];
        std::string body;
        switch (op.kind) {
          case OpKind::Load:
            body = csprintf("r%d <- %s (%u)", op.dstReg,
                            memOperand(op).c_str(), op.size);
            break;
          case OpKind::Store:
            body = csprintf("%s <- %s (%u)", memOperand(op).c_str(),
                            dataOperand(op).c_str(), op.size);
            break;
          case OpKind::AtomicRmw:
            body = csprintf("r%d <- xchg %s, %s", op.dstReg,
                            memOperand(op).c_str(),
                            dataOperand(op).c_str());
            break;
          case OpKind::Move:
            body = csprintf("r%d <- 0x%llx", op.dstReg,
                            static_cast<unsigned long long>(op.imm));
            break;
          case OpKind::AddImm:
            body = csprintf("r%d <- r%d + 0x%llx", op.dstReg, op.srcReg,
                            static_cast<unsigned long long>(op.imm));
            break;
          case OpKind::Compute:
            body = csprintf("%llu cycles",
                            static_cast<unsigned long long>(op.imm));
            break;
          case OpKind::BranchEq:
          case OpKind::BranchNe:
            body = csprintf("r%d, 0x%llx -> %d", op.srcReg,
                            static_cast<unsigned long long>(op.imm),
                            op.target);
            break;
          case OpKind::Jump:
            body = csprintf("-> %d", op.target);
            break;
          case OpKind::Syscall:
          case OpKind::CallPal:
            body = csprintf("#%llu",
                            static_cast<unsigned long long>(op.imm));
            break;
          default:
            break;
        }
        out += csprintf("%3zu: %-9s %s", i, toString(op.kind),
                        body.c_str());
        if (!op.label.empty())
            out += csprintf("   ; %s", op.label.c_str());
        out += "\n";
    }
    return out;
}

const char *
toString(OpKind kind)
{
    switch (kind) {
      case OpKind::Load: return "load";
      case OpKind::Store: return "store";
      case OpKind::AtomicRmw: return "atomic_rmw";
      case OpKind::Membar: return "membar";
      case OpKind::Move: return "move";
      case OpKind::AddImm: return "addimm";
      case OpKind::Compute: return "compute";
      case OpKind::BranchEq: return "beq";
      case OpKind::BranchNe: return "bne";
      case OpKind::Jump: return "jump";
      case OpKind::Syscall: return "syscall";
      case OpKind::CallPal: return "call_pal";
      case OpKind::Callback: return "callback";
      case OpKind::Yield: return "yield";
      case OpKind::Exit: return "exit";
    }
    return "?";
}

} // namespace uldma
