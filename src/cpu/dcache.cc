#include "cpu/dcache.hh"

#include "util/logging.hh"

namespace uldma {

Dcache::Dcache(std::string name, const DcacheParams &params,
               PhysicalMemory &memory)
    : name_(std::move(name)), params_(params), statsGroup_(name_)
{
    ULDMA_ASSERT(isPowerOf2(params_.lineBytes),
                 "cache line size must be a power of two");
    ULDMA_ASSERT(params_.sizeBytes >= params_.lineBytes &&
                     params_.sizeBytes % params_.lineBytes == 0,
                 "cache size must be a multiple of the line size");
    lines_.resize(params_.sizeBytes / params_.lineBytes);

    // Snoop every write into backing memory: DMA engine payloads,
    // network deliveries and other processes' stores all invalidate
    // overlapping lines.
    memory.addWriteObserver([this](Addr addr, Addr size) {
        invalidate(addr, size);
    });

    statsGroup_.addScalar("hits", &hits_, "read hits");
    statsGroup_.addScalar("misses", &misses_, "read misses (line fills)");
    statsGroup_.addScalar("writes", &writes_, "write-through stores");
    statsGroup_.addScalar("invalidations", &invalidations_,
                          "lines invalidated by external writes");
}

Cycles
Dcache::access(Addr paddr, unsigned size, bool is_write)
{
    (void)size;   // sub-line accesses cost the same
    Line &line = lines_[lineIndex(paddr)];
    const Addr tag = lineTag(paddr);

    if (is_write) {
        ++writes_;
        // Write-through: the store goes straight to memory; a
        // resident line stays valid (the data in memory is current).
        return params_.writeCycles;
    }

    if (line.valid && line.tag == tag) {
        ++hits_;
        return params_.hitExtraCycles;
    }

    ++misses_;
    line.valid = true;
    line.tag = tag;
    return params_.missCycles;
}

void
Dcache::invalidate(Addr paddr, Addr size)
{
    if (size == 0 || suppress_)
        return;
    const Addr first = paddr / params_.lineBytes;
    const Addr last = (paddr + size - 1) / params_.lineBytes;
    // For huge ranges just flush; cheaper than touching each line.
    if (last - first + 1 >= lines_.size()) {
        flush();
        return;
    }
    for (Addr l = first; l <= last; ++l) {
        Line &line = lines_[l % lines_.size()];
        if (line.valid && line.tag == l) {
            line.valid = false;
            ++invalidations_;
        }
    }
}

void
Dcache::flush()
{
    for (Line &line : lines_) {
        if (line.valid)
            ++invalidations_;
        line.valid = false;
    }
}

} // namespace uldma
