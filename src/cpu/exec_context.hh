/**
 * @file
 * The architectural state of one runnable entity: register file,
 * program counter, program, and the page table it runs under.  The OS
 * module wraps this in a full Process; the CPU executes it.
 */

#ifndef ULDMA_CPU_EXEC_CONTEXT_HH
#define ULDMA_CPU_EXEC_CONTEXT_HH

#include <array>
#include <string>

#include "cpu/program.hh"
#include "vm/page_table.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace uldma {

/** Why an ExecContext stopped running. */
enum class RunState : std::uint8_t
{
    Ready,      ///< runnable, waiting for the CPU
    Running,    ///< currently on the CPU
    Blocked,    ///< waiting (yield / sleep)
    Exited,     ///< ran its Exit op
    Faulted,    ///< killed by an unhandled memory fault
};

/**
 * Registers + PC + program + address space of one thread of control.
 */
class ExecContext
{
  public:
    ExecContext(Pid pid, std::string name, PageTable &pt)
        : pid_(pid), name_(std::move(name)), pageTable_(&pt)
    {
        regs_.fill(0);
    }

    Pid pid() const { return pid_; }
    const std::string &name() const { return name_; }

    PageTable &pageTable() { return *pageTable_; }
    const PageTable &pageTable() const { return *pageTable_; }

    /// @name Register file.
    /// @{
    std::uint64_t
    reg(int idx) const
    {
        ULDMA_ASSERT(idx >= 0 && idx < static_cast<int>(numRegs),
                     "register index ", idx, " out of range");
        return regs_[idx];
    }

    void
    setReg(int idx, std::uint64_t value)
    {
        ULDMA_ASSERT(idx >= 0 && idx < static_cast<int>(numRegs),
                     "register index ", idx, " out of range");
        regs_[idx] = value;
    }
    /// @}

    /// @name Program and program counter.
    /// @{
    const Program &program() const { return program_; }

    /** Replace the program and reset the PC (used to (re)launch). */
    void
    setProgram(Program program)
    {
        program_ = std::move(program);
        pc_ = 0;
        state_ = RunState::Ready;
    }

    int pc() const { return pc_; }
    void setPc(int pc) { pc_ = pc; }

    bool
    atEnd() const
    {
        return pc_ < 0 || pc_ >= static_cast<int>(program_.size());
    }

    const MicroOp &
    currentOp() const
    {
        return program_.at(static_cast<std::size_t>(pc_));
    }
    /// @}

    RunState state() const { return state_; }
    void setState(RunState s) { state_ = s; }

    /** Fault that killed the context (valid when state == Faulted). */
    Fault faultReason() const { return faultReason_; }
    Addr faultAddr() const { return faultAddr_; }

    void
    recordFault(Fault fault, Addr vaddr)
    {
        faultReason_ = fault;
        faultAddr_ = vaddr;
        state_ = RunState::Faulted;
    }

    /** Instructions retired by this context. */
    std::uint64_t instructionsRetired() const { return retired_; }
    void countRetired() { ++retired_; }

  private:
    Pid pid_;
    std::string name_;
    PageTable *pageTable_;

    std::array<std::uint64_t, numRegs> regs_;
    Program program_;
    int pc_ = 0;
    RunState state_ = RunState::Ready;

    Fault faultReason_ = Fault::None;
    Addr faultAddr_ = 0;
    std::uint64_t retired_ = 0;
};

} // namespace uldma

#endif // ULDMA_CPU_EXEC_CONTEXT_HH
