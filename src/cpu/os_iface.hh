/**
 * @file
 * The narrow interface the CPU uses to call up into the operating
 * system.  Defining it here (in the cpu module) keeps the layering
 * clean: cpu depends on this abstract class, os implements it.
 */

#ifndef ULDMA_CPU_OS_IFACE_HH
#define ULDMA_CPU_OS_IFACE_HH

#include <cstdint>

#include "vm/page_table.hh"
#include "util/types.hh"

namespace uldma {

class ExecContext;

/** What the kernel returns from a syscall trap. */
struct SyscallResult
{
    std::uint64_t retval = 0;
    /** Ticks consumed inside the kernel (entry + work + exit). */
    Tick cost = 0;
};

/**
 * Upcalls from the CPU into the OS.
 */
class OsCallbacks
{
  public:
    virtual ~OsCallbacks() = default;

    /**
     * A process executed a Syscall micro-op.  Arguments are in the
     * context's a0..a3 registers.  May switch the current context.
     */
    virtual SyscallResult syscall(ExecContext &ctx,
                                  std::uint64_t number) = 0;

    /**
     * A memory access faulted.  The kernel decides the consequence
     * (kill the process, in this model).
     * @return ticks consumed handling the fault.
     */
    virtual Tick handleFault(ExecContext &ctx, Fault fault, Addr vaddr) = 0;

    /**
     * The scheduling quantum of the current context expired.  The
     * kernel typically context-switches here (this is exactly the
     * moment the paper's race conditions live in).
     * @return ticks consumed (context-switch cost).
     */
    virtual Tick quantumExpired() = 0;

    /** The current context executed Yield. @return ticks consumed. */
    virtual Tick yielded() = 0;

    /** The current context executed Exit. @return ticks consumed. */
    virtual Tick exited() = 0;
};

} // namespace uldma

#endif // ULDMA_CPU_OS_IFACE_HH
