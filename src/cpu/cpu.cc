#include "cpu/cpu.hh"

#include "sim/trace.hh"
#include "util/logging.hh"

namespace uldma {

Cpu::Cpu(EventQueue &eq, std::string name, const CpuParams &params,
         Bus &bus, PhysicalMemory &memory, NodeId node)
    : Clocked(eq, ClockDomain::fromMHz(name + ".clk", params.clockMHz)),
      name_(std::move(name)), params_(params), bus_(bus), memory_(memory),
      node_(node),
      mergeBuffer_(name_ + ".wb", bus, params.mergeBuffer),
      tlb_(name_ + ".tlb", params.tlb),
      tickEvent_(*this),
      statsGroup_(name_)
{
    if (params_.dcache.enabled) {
        dcache_ = std::make_unique<Dcache>(name_ + ".dcache",
                                           params_.dcache, memory_);
    }
    statsGroup_.addScalar("instructions", &instrs_,
                          "micro-ops retired");
    statsGroup_.addScalar("loads", &loads_, "load micro-ops");
    statsGroup_.addScalar("stores", &stores_, "store micro-ops");
    statsGroup_.addScalar("uncached_loads", &uncachedLoads_,
                          "loads that reached the I/O bus path");
    statsGroup_.addScalar("uncached_stores", &uncachedStores_,
                          "stores that entered the write buffer");
    statsGroup_.addScalar("membars", &membars_, "memory barriers");
    statsGroup_.addScalar("syscalls", &syscalls_, "syscall traps");
    statsGroup_.addScalar("pal_calls", &palCalls_, "PAL calls executed");
    statsGroup_.addScalar("faults", &faults_, "memory faults taken");
}

void
Cpu::registerPal(std::uint64_t index, Program program)
{
    ULDMA_ASSERT(program.size() <= params_.palMaxInstructions,
                 "PAL function ", index, " has ", program.size(),
                 " micro-ops; the limit is ", params_.palMaxInstructions);
    for (std::size_t i = 0; i < program.size(); ++i) {
        const OpKind kind = program.at(i).kind;
        ULDMA_ASSERT(kind != OpKind::Syscall && kind != OpKind::CallPal &&
                     kind != OpKind::Yield && kind != OpKind::Exit,
                     "PAL function ", index,
                     " contains a trapping micro-op");
    }
    palTable_[index] = std::move(program);
}

void
Cpu::setCurrentContext(ExecContext *ctx)
{
    current_ = ctx;
    if (ctx != nullptr)
        ctx->setState(RunState::Running);
}

void
Cpu::setInstructionQuantum(std::uint64_t instructions)
{
    sliceLimited_ = instructions != 0;
    sliceInstrLeft_ = instructions;
}

void
Cpu::start()
{
    if (!tickEvent_.scheduled() && current_ != nullptr)
        eventq().schedule(&tickEvent_, clockEdge());
}

void
Cpu::stop()
{
    if (tickEvent_.scheduled())
        eventq().deschedule(&tickEvent_);
}

Tick
Cpu::kernelBusAccess(Packet &pkt)
{
    pkt.uncacheable = true;
    pkt.srcNode = node_;
    return bus_.access(pkt);
}

void
Cpu::tick()
{
    if (current_ == nullptr)
        return;   // idled; the kernel restarts us

    ExecContext &ctx = *current_;
    Tick cost = executeOne(ctx);

    // Quantum accounting happens at instruction boundaries only —
    // exactly where the paper's context-switch races live.
    if (current_ != nullptr && os_ != nullptr) {
        bool expire = false;
        if (sliceLimited_ && current_ == &ctx) {
            ULDMA_ASSERT(sliceInstrLeft_ > 0, "slice underflow");
            if (--sliceInstrLeft_ == 0)
                expire = true;
        }
        if (!expire && now() + cost >= quantumDeadline_ &&
            quantumDeadline_ != maxTick) {
            expire = true;
        }
        if (expire)
            cost += os_->quantumExpired();
    }

    if (current_ != nullptr && !tickEvent_.scheduled()) {
        const Tick next = now() + (cost > 0 ? cost : clockPeriod());
        eventq().schedule(&tickEvent_, next);
    }
}

Tick
Cpu::executeOne(ExecContext &ctx)
{
    if (ctx.atEnd()) {
        // Falling off the end of the program is an implicit Exit.
        ULDMA_ASSERT(os_ != nullptr, "CPU has no OS attached");
        return os_->exited();
    }

    const MicroOp op = ctx.currentOp();
    int next_pc = ctx.pc() + 1;
    ++instrs_;
    ctx.countRetired();

    const Tick cost = executeOp(ctx, op, /*in_pal=*/false, next_pc);

    // A fault does not advance the PC; every other op does (branches
    // set next_pc themselves).
    if (ctx.state() != RunState::Faulted)
        ctx.setPc(next_pc);
    return cost;
}

Tick
Cpu::executeOp(ExecContext &ctx, const MicroOp &op, bool in_pal,
               int &next_pc)
{
    Tick cost = cyclesToTicks(params_.baseInstrCycles);

    switch (op.kind) {
      case OpKind::Move:
        ctx.setReg(op.dstReg, op.imm);
        break;

      case OpKind::AddImm:
        ctx.setReg(op.dstReg, ctx.reg(op.srcReg) + op.imm);
        break;

      case OpKind::Compute:
        cost += cyclesToTicks(op.imm);
        break;

      case OpKind::Load: {
        ++loads_;
        bool faulted = false;
        cost += memoryAccess(ctx, op, /*is_load=*/true, in_pal, faulted);
        if (faulted)
            return cost;
        break;
      }

      case OpKind::Store: {
        ++stores_;
        bool faulted = false;
        cost += memoryAccess(ctx, op, /*is_load=*/false, in_pal, faulted);
        if (faulted)
            return cost;
        break;
      }

      case OpKind::AtomicRmw: {
        bool faulted = false;
        cost += atomicAccess(ctx, op, in_pal, faulted);
        if (faulted)
            return cost;
        break;
      }

      case OpKind::Membar:
        ++membars_;
        cost += cyclesToTicks(params_.membarCycles);
        cost += mergeBuffer_.membar();
        break;

      case OpKind::BranchEq:
        if (ctx.reg(op.srcReg) == op.imm)
            next_pc = op.target;
        break;

      case OpKind::BranchNe:
        if (ctx.reg(op.srcReg) != op.imm)
            next_pc = op.target;
        break;

      case OpKind::Jump:
        next_pc = op.target;
        break;

      case OpKind::Syscall: {
        ULDMA_ASSERT(!in_pal, "syscall inside PAL code");
        ULDMA_ASSERT(os_ != nullptr, "CPU has no OS attached");
        ++syscalls_;
        // The PC must already point past the trap when the kernel
        // runs, so a context switch resumes correctly.
        ctx.setPc(next_pc);
        const SyscallResult result = os_->syscall(ctx, op.imm);
        ctx.setReg(reg::v0, result.retval);
        next_pc = ctx.pc();
        cost += result.cost;
        break;
      }

      case OpKind::CallPal:
        ULDMA_ASSERT(!in_pal, "nested PAL call");
        ++palCalls_;
        cost += executePal(ctx, op.imm);
        break;

      case OpKind::Callback:
        if (op.hook)
            op.hook(ctx);
        cost += cyclesToTicks(op.imm);
        break;

      case OpKind::Yield: {
        ULDMA_ASSERT(!in_pal, "yield inside PAL code");
        ULDMA_ASSERT(os_ != nullptr, "CPU has no OS attached");
        ctx.setPc(next_pc);
        cost += os_->yielded();
        next_pc = ctx.pc();
        break;
      }

      case OpKind::Exit: {
        ULDMA_ASSERT(!in_pal, "exit inside PAL code");
        ULDMA_ASSERT(os_ != nullptr, "CPU has no OS attached");
        cost += os_->exited();
        break;
      }
    }

    return cost;
}

Tick
Cpu::executePal(ExecContext &ctx, std::uint64_t index)
{
    auto it = palTable_.find(index);
    ULDMA_ASSERT(it != palTable_.end(), "PAL function ", index,
                 " not installed");
    const Program &pal = it->second;

    ULDMA_TRACE("Cpu", now(), name_, ": PAL call ", index, " by pid ",
                ctx.pid());

    // The whole PAL body runs inside this one tick event: no quantum
    // check, no interrupt — the uninterruptibility of paper §2.7.
    Tick cost = cyclesToTicks(params_.palEntryExitCycles);
    int pal_pc = 0;
    unsigned executed = 0;
    while (pal_pc >= 0 && pal_pc < static_cast<int>(pal.size())) {
        ULDMA_ASSERT(executed < 4 * params_.palMaxInstructions,
                     "runaway PAL function ", index);
        const MicroOp &op = pal.at(static_cast<std::size_t>(pal_pc));
        int next_pc = pal_pc + 1;
        cost += executeOp(ctx, op, /*in_pal=*/true, next_pc);
        ULDMA_ASSERT(ctx.state() != RunState::Faulted,
                     "memory fault inside PAL function ", index);
        pal_pc = next_pc;
        ++executed;
    }
    return cost;
}

Tick
Cpu::atomicAccess(ExecContext &ctx, const MicroOp &op, bool in_pal,
                  bool &faulted)
{
    faulted = false;
    const Addr vaddr =
        (op.addrReg >= 0 ? ctx.reg(op.addrReg) : 0) + op.vaddr;

    Cycles miss_cycles = 0;
    const Translation xlate = tlb_.translate(ctx.pageTable(), vaddr,
                                             Rights::ReadWrite,
                                             miss_cycles);
    Tick cost = cyclesToTicks(miss_cycles);

    if (!xlate.ok()) {
        ++faults_;
        faulted = true;
        ULDMA_ASSERT(!in_pal, "fault inside PAL code");
        ULDMA_ASSERT(os_ != nullptr, "CPU has no OS attached");
        ctx.recordFault(xlate.fault, vaddr);
        cost += os_->handleFault(ctx, xlate.fault, vaddr);
        return cost;
    }

    const std::uint64_t operand =
        op.srcReg >= 0 ? ctx.reg(op.srcReg) : op.imm;

    if (xlate.uncacheable) {
        Packet pkt = Packet::makeWrite(xlate.paddr, operand, op.size);
        pkt.uncacheable = true;
        pkt.rmw = true;
        pkt.srcPid = ctx.pid();
        pkt.srcNode = node_;
        cost += cyclesToTicks(params_.uncachedIssueExtraCycles);
        cost += mergeBuffer_.rmw(pkt);
        ctx.setReg(op.dstReg, pkt.data);
    } else {
        // In-memory atomic exchange (single-threaded event model makes
        // this trivially atomic).
        const std::uint64_t old = memory_.readInt(xlate.paddr, op.size);
        {
            Dcache::SelfAccess guard(dcache_.get());
            memory_.writeInt(xlate.paddr, operand, op.size);
        }
        ctx.setReg(op.dstReg, old);
        if (dcache_ != nullptr) {
            cost += cyclesToTicks(
                dcache_->access(xlate.paddr, op.size, false) +
                dcache_->access(xlate.paddr, op.size, true));
        } else {
            cost += cyclesToTicks(params_.cachedMemExtraCycles * 2);
        }
    }
    return cost;
}

Tick
Cpu::memoryAccess(ExecContext &ctx, const MicroOp &op, bool is_load,
                  bool in_pal, bool &faulted)
{
    faulted = false;
    const Addr vaddr =
        (op.addrReg >= 0 ? ctx.reg(op.addrReg) : 0) + op.vaddr;
    const Rights need = is_load ? Rights::Read : Rights::Write;

    Cycles miss_cycles = 0;
    const Translation xlate =
        tlb_.translate(ctx.pageTable(), vaddr, need, miss_cycles);
    Tick cost = cyclesToTicks(miss_cycles);

    if (!xlate.ok()) {
        ++faults_;
        faulted = true;
        if (in_pal) {
            ULDMA_PANIC("fault inside PAL code at vaddr 0x", std::hex,
                        vaddr);
        }
        ULDMA_ASSERT(os_ != nullptr, "CPU has no OS attached");
        ctx.recordFault(xlate.fault, vaddr);
        cost += os_->handleFault(ctx, xlate.fault, vaddr);
        return cost;
    }

    if (xlate.uncacheable) {
        Packet pkt = is_load
            ? Packet::makeRead(xlate.paddr, op.size)
            : Packet::makeWrite(xlate.paddr,
                                op.srcReg >= 0 ? ctx.reg(op.srcReg)
                                               : op.imm,
                                op.size);
        pkt.uncacheable = true;
        pkt.srcPid = ctx.pid();
        pkt.srcNode = node_;

        cost += cyclesToTicks(params_.uncachedIssueExtraCycles);
        if (is_load) {
            ++uncachedLoads_;
            cost += mergeBuffer_.load(pkt);
            ctx.setReg(op.dstReg, pkt.data);
        } else {
            ++uncachedStores_;
            cost += mergeBuffer_.store(pkt);
        }
    } else {
        if (dcache_ != nullptr) {
            cost += cyclesToTicks(
                dcache_->access(xlate.paddr, op.size, !is_load));
        } else {
            cost += cyclesToTicks(params_.cachedMemExtraCycles);
        }
        if (is_load) {
            ctx.setReg(op.dstReg, memory_.readInt(xlate.paddr, op.size));
        } else {
            // The CPU's own write-through store keeps its cache line
            // coherent; suppress the snoop invalidation.
            Dcache::SelfAccess guard(dcache_.get());
            memory_.writeInt(xlate.paddr,
                             op.srcReg >= 0 ? ctx.reg(op.srcReg) : op.imm,
                             op.size);
        }
    }
    return cost;
}

} // namespace uldma
