/**
 * @file
 * The simulated host CPU: an in-order micro-op interpreter with an
 * Alpha-style PAL mode, clocked at 150 MHz by default (the DEC Alpha
 * 3000 model 300 of the paper's testbed).
 *
 * One micro-op executes per CPU tick event; its cost in ticks is
 * computed from the cost model plus any bus time consumed, and the next
 * tick is scheduled after it.  The OS is invoked through OsCallbacks at
 * traps (syscall, fault) and at quantum boundaries — the only places a
 * context switch can happen, matching the instruction-boundary
 * preemption the paper's race conditions are built from.  A PAL call
 * executes all of its micro-ops inside a single tick event and is
 * therefore uninterruptible, which is precisely the property the PAL
 * solution (paper §2.7) relies on.
 */

#ifndef ULDMA_CPU_CPU_HH
#define ULDMA_CPU_CPU_HH

#include <map>
#include <memory>
#include <string>

#include "cpu/dcache.hh"
#include "cpu/exec_context.hh"
#include "cpu/os_iface.hh"
#include "cpu/program.hh"
#include "mem/bus.hh"
#include "mem/merge_buffer.hh"
#include "mem/physical_memory.hh"
#include "sim/clocked.hh"
#include "sim/stats.hh"
#include "vm/tlb.hh"

namespace uldma {

/** CPU cost model and configuration. */
struct CpuParams
{
    /** Core clock; 150 MHz matches the Alpha 3000/300. */
    std::uint64_t clockMHz = 150;
    /** Cycles charged to every instruction. */
    Cycles baseInstrCycles = 1;
    /** Extra cycles for a cached (DRAM) memory access. */
    Cycles cachedMemExtraCycles = 2;
    /** CPU-side extra cycles to issue an uncached access (pipeline
     *  drain and bus interface), on top of the bus time itself. */
    Cycles uncachedIssueExtraCycles = 4;
    /** Cycles for a memory barrier (plus any drain bus time). */
    Cycles membarCycles = 6;
    /** Entry + exit overhead of a PAL call. */
    Cycles palEntryExitCycles = 40;
    /** Maximum micro-ops per PAL function (16 on the Alpha). */
    unsigned palMaxInstructions = 16;

    TlbParams tlb;
    MergeBufferParams mergeBuffer;
    /** Optional L1 data cache (off by default; see dcache.hh). */
    DcacheParams dcache;
};

/**
 * One workstation's processor.
 */
class Cpu : public Clocked
{
  public:
    Cpu(EventQueue &eq, std::string name, const CpuParams &params,
        Bus &bus, PhysicalMemory &memory, NodeId node = 0);

    /** Deschedules the pending tick event, if any. */
    ~Cpu() { stop(); }

    const std::string &name() const { return name_; }
    const CpuParams &params() const { return params_; }
    NodeId node() const { return node_; }

    /** Wire up the OS; must be called before running. */
    void setOs(OsCallbacks *os) { os_ = os; }

    /// @name PAL code management (paper §2.7).
    /// @{
    /**
     * Install a PAL function.  Only the superuser (i.e. machine setup
     * code) may do this; once installed, any process may invoke it via
     * the CallPal micro-op.  The program may not trap or exceed the
     * 16-instruction limit.
     */
    void registerPal(std::uint64_t index, Program program);
    bool hasPal(std::uint64_t index) const { return palTable_.count(index); }
    /// @}

    /// @name Context control (kernel-facing).
    /// @{
    /** Set the running context (nullptr idles the CPU). */
    void setCurrentContext(ExecContext *ctx);
    ExecContext *currentContext() { return current_; }

    /**
     * Limit the current slice to @p instructions before the kernel's
     * quantumExpired() fires; 0 means unlimited.
     */
    void setInstructionQuantum(std::uint64_t instructions);

    /** Expire the slice at absolute tick @p deadline; maxTick = never. */
    void setTimeQuantum(Tick deadline) { quantumDeadline_ = deadline; }

    /** Begin/resume executing (schedules the tick event). */
    void start();
    /** Stop executing after the current instruction. */
    void stop();

    bool idle() const { return current_ == nullptr; }
    /// @}

    MergeBuffer &mergeBuffer() { return mergeBuffer_; }
    Tlb &tlb() { return tlb_; }
    /** The L1 data cache, or nullptr when disabled. */
    Dcache *dcache() { return dcache_.get(); }
    Bus &bus() { return bus_; }
    PhysicalMemory &memory() { return memory_; }

    /**
     * Privileged bus access on behalf of the kernel (used by the
     * kernel-level DMA driver to touch device registers).
     * @return bus latency in ticks.
     */
    Tick kernelBusAccess(Packet &pkt);

    /** Convert CPU cycles to ticks. */
    Tick cyclesToTicks(Cycles c) const
    {
        return clockDomain().cyclesToTicks(c);
    }

    stats::Group &statsGroup() { return statsGroup_; }

    /** Registers the CPU's stats and its merge buffer / TLB / dcache. */
    void
    registerStats(stats::Registry &r)
    {
        r.add(&statsGroup_);
        mergeBuffer_.registerStats(r);
        tlb_.registerStats(r);
        if (dcache_ != nullptr)
            dcache_->registerStats(r);
    }

    std::uint64_t instructionsRetired() const { return instrs_.value(); }
    std::uint64_t numUncachedAccesses() const
    {
        return uncachedLoads_.value() + uncachedStores_.value();
    }
    std::uint64_t numSyscalls() const { return syscalls_.value(); }
    std::uint64_t numPalCalls() const { return palCalls_.value(); }

  private:
    class TickEvent : public Event
    {
      public:
        explicit TickEvent(Cpu &cpu)
            : Event(cpu.name() + ".tick", CpuPrio), cpu_(cpu)
        {}
        void process() override { cpu_.tick(); }

      private:
        Cpu &cpu_;
    };

    /** Execute one instruction and reschedule. */
    void tick();

    /** Execute the current op of @p ctx. @return cost in ticks. */
    Tick executeOne(ExecContext &ctx);

    /** Execute a single micro-op. @return cost in ticks. */
    Tick executeOp(ExecContext &ctx, const MicroOp &op, bool in_pal,
                   int &next_pc);

    /** Execute a whole PAL function uninterruptibly. */
    Tick executePal(ExecContext &ctx, std::uint64_t index);

    /** Common load/store path. @return cost in ticks. */
    Tick memoryAccess(ExecContext &ctx, const MicroOp &op, bool is_load,
                      bool in_pal, bool &faulted);

    /** Atomic read-modify-write path. @return cost in ticks. */
    Tick atomicAccess(ExecContext &ctx, const MicroOp &op, bool in_pal,
                      bool &faulted);

    std::string name_;
    CpuParams params_;
    Bus &bus_;
    PhysicalMemory &memory_;
    NodeId node_;

    OsCallbacks *os_ = nullptr;
    ExecContext *current_ = nullptr;

    MergeBuffer mergeBuffer_;
    Tlb tlb_;
    std::unique_ptr<Dcache> dcache_;
    TickEvent tickEvent_;

    std::map<std::uint64_t, Program> palTable_;

    std::uint64_t sliceInstrLeft_ = 0;   ///< 0 = unlimited
    bool sliceLimited_ = false;
    Tick quantumDeadline_ = maxTick;

    stats::Group statsGroup_;
    stats::Scalar instrs_;
    stats::Scalar loads_;
    stats::Scalar stores_;
    stats::Scalar uncachedLoads_;
    stats::Scalar uncachedStores_;
    stats::Scalar membars_;
    stats::Scalar syscalls_;
    stats::Scalar palCalls_;
    stats::Scalar faults_;
};

} // namespace uldma

#endif // ULDMA_CPU_CPU_HH
