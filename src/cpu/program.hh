/**
 * @file
 * The micro-op "assembly language" simulated programs are written in.
 *
 * The paper's protocols are defined as exact instruction sequences
 * (STORE size TO shadow(vdst); LOAD status FROM shadow(vsrc); ...), and
 * their security hinges on what happens when a process is preempted
 * between any two of them.  Programs here are sequences of explicit
 * micro-ops so the scheduler can preempt at every instruction boundary
 * and tests can force any interleaving the paper discusses.
 */

#ifndef ULDMA_CPU_PROGRAM_HH
#define ULDMA_CPU_PROGRAM_HH

#include <functional>
#include <string>
#include <vector>

#include "util/types.hh"

namespace uldma {

class ExecContext;

/** Number of general-purpose registers per context. */
inline constexpr unsigned numRegs = 16;

/** Register-naming conventions (a small Alpha-flavoured ABI). */
namespace reg {
inline constexpr int a0 = 0;   ///< syscall/PAL argument 0
inline constexpr int a1 = 1;   ///< syscall/PAL argument 1
inline constexpr int a2 = 2;   ///< syscall/PAL argument 2
inline constexpr int a3 = 3;   ///< syscall/PAL argument 3
inline constexpr int v0 = 6;   ///< syscall/PAL return value
inline constexpr int t0 = 8;   ///< temporaries t0..t7
inline constexpr int t1 = 9;
inline constexpr int t2 = 10;
inline constexpr int t3 = 11;
} // namespace reg

/** Micro-op opcodes. */
enum class OpKind : std::uint8_t
{
    Load,      ///< reg[dst] = MEM[addr]
    Store,     ///< MEM[addr] = value
    AtomicRmw, ///< reg[dst] = exchange(MEM[addr], value); uninterruptible
    Membar,    ///< drain write buffer, invalidate read buffer
    Move,      ///< reg[dst] = imm
    AddImm,    ///< reg[dst] = reg[src] + imm
    Compute,   ///< spin for imm CPU cycles
    BranchEq,  ///< if reg[src] == imm goto target
    BranchNe,  ///< if reg[src] != imm goto target
    Jump,      ///< goto target
    Syscall,   ///< trap into the kernel; number = imm, args in a0..a3
    CallPal,   ///< run PAL function imm uninterruptibly (Alpha-style)
    Callback,  ///< host-side hook (measurement / data setup); imm cycles
    Yield,     ///< voluntarily release the CPU
    Exit,      ///< terminate the process
};

/** One micro-op.  Fields are interpreted per OpKind. */
struct MicroOp
{
    OpKind kind = OpKind::Compute;

    /** Memory ops: immediate virtual address, or offset if addrReg>=0. */
    Addr vaddr = 0;
    /** Memory ops: if >= 0, effective address = reg[addrReg] + vaddr. */
    int addrReg = -1;
    /** Access size in bytes for memory ops. */
    unsigned size = 8;

    /** Immediate operand (store data, move value, branch compare,
     *  compute cycles, syscall number, PAL index). */
    std::uint64_t imm = 0;
    /** If >= 0, the register supplying the operand instead of imm
     *  (store data source, AddImm source, branch compare source). */
    int srcReg = -1;

    /** Destination register (Load, Move, AddImm). */
    int dstReg = -1;

    /** Branch/Jump target (instruction index). */
    int target = -1;

    /** Host hook for OpKind::Callback. */
    std::function<void(ExecContext &)> hook;

    /** Optional debug label. */
    std::string label;
};

/**
 * A program: an immutable-after-build list of micro-ops with a fluent
 * builder interface.
 *
 * Example — the extended-shadow-addressing initiation (paper fig. 4):
 * @code
 *   Program p;
 *   p.store(shadowOf(vdst), size);        // STORE size TO shadow(vdst)
 *   p.load(reg::v0, shadowOf(vsrc));      // LOAD status FROM shadow(vsrc)
 *   p.exit();
 * @endcode
 */
class Program
{
  public:
    Program() = default;

    /** Number of micro-ops. */
    std::size_t size() const { return ops_.size(); }
    bool empty() const { return ops_.empty(); }
    const MicroOp &at(std::size_t i) const { return ops_.at(i); }

    /** Index the next appended op will get (for branch targets). */
    int here() const { return static_cast<int>(ops_.size()); }

    /// @name Builder methods; each returns the index of the new op.
    /// @{
    int load(int dst_reg, Addr vaddr, unsigned size = 8);
    int loadIndirect(int dst_reg, int addr_reg, Addr offset = 0,
                     unsigned size = 8);
    int store(Addr vaddr, std::uint64_t value, unsigned size = 8);
    int storeReg(Addr vaddr, int src_reg, unsigned size = 8);
    int storeIndirect(int addr_reg, Addr offset, std::uint64_t value,
                      unsigned size = 8);
    int storeIndirectReg(int addr_reg, Addr offset, int src_reg,
                         unsigned size = 8);
    int atomicRmw(int dst_reg, Addr vaddr, std::uint64_t value,
                  unsigned size = 8);
    int membar();
    int move(int dst_reg, std::uint64_t value);
    int addImm(int dst_reg, int src_reg, std::uint64_t value);
    int compute(std::uint64_t cycles);
    int branchEq(int src_reg, std::uint64_t value, int target);
    int branchNe(int src_reg, std::uint64_t value, int target);
    int jump(int target);
    int syscall(std::uint64_t number);
    int callPal(std::uint64_t pal_index);
    int callback(std::function<void(ExecContext &)> hook,
                 std::uint64_t cycles = 0);
    int yield();
    int exit();
    /// @}

    /** Patch a previously emitted branch/jump to point at @p target. */
    void setTarget(int op_index, int target);

    /** Attach a debug label to the most recent op. */
    Program &withLabel(std::string label);

    /** Append all ops of @p other (branch targets are rebased). */
    void append(const Program &other);

    /**
     * Human-readable listing (one op per line, with labels), e.g.
     * @code
     *   0: store   [0x80020000] <- 0x400        ; store size->shadow(dst)
     *   1: load    v0 <- [0x80018000]           ; load status<-shadow(src)
     * @endcode
     */
    std::string disassemble() const;

  private:
    int push(MicroOp op);

    std::vector<MicroOp> ops_;
};

/** Printable opcode name. */
const char *toString(OpKind kind);

} // namespace uldma

#endif // ULDMA_CPU_PROGRAM_HH
