#include "os/scheduler.hh"

#include <algorithm>

#include "util/logging.hh"

namespace uldma {

// ---------------------------------------------------------------------
// RoundRobinScheduler
// ---------------------------------------------------------------------

void
RoundRobinScheduler::enqueue(Process &process)
{
    if (std::find(ready_.begin(), ready_.end(), &process) == ready_.end())
        ready_.push_back(&process);
}

SchedulingDecision
RoundRobinScheduler::pickNext(Process *previous)
{
    if (previous != nullptr && previous->runnable())
        enqueue(*previous);

    while (!ready_.empty()) {
        Process *candidate = ready_.front();
        ready_.pop_front();
        if (!candidate->runnable())
            continue;
        return SchedulingDecision{candidate, 0, quantum_};
    }
    return SchedulingDecision{};
}

// ---------------------------------------------------------------------
// ScriptedScheduler
// ---------------------------------------------------------------------

void
ScriptedScheduler::enqueue(Process &process)
{
    if (std::find(ready_.begin(), ready_.end(), &process) == ready_.end())
        ready_.push_back(&process);
}

SchedulingDecision
ScriptedScheduler::pickNext(Process *previous)
{
    if (previous != nullptr && previous->runnable())
        enqueue(*previous);

    // Scripted phase: find the next slice whose pid is still runnable.
    while (cursor_ < script_.size()) {
        const Slice slice = script_[cursor_];
        ++cursor_;
        auto it = std::find_if(ready_.begin(), ready_.end(),
                               [&](Process *p) {
                                   return p->pid() == slice.pid &&
                                          p->runnable();
                               });
        if (it == ready_.end())
            continue;   // target exited early; skip this slice
        Process *chosen = *it;
        ready_.erase(it);
        return SchedulingDecision{chosen, slice.instructions, 0};
    }

    // Drain phase: run-to-completion round robin.
    while (!ready_.empty()) {
        Process *candidate = ready_.front();
        ready_.pop_front();
        if (!candidate->runnable())
            continue;
        return SchedulingDecision{candidate, 0, 0};
    }
    return SchedulingDecision{};
}

// ---------------------------------------------------------------------
// RandomScheduler
// ---------------------------------------------------------------------

void
RandomScheduler::enqueue(Process &process)
{
    if (std::find(ready_.begin(), ready_.end(), &process) == ready_.end())
        ready_.push_back(&process);
}

SchedulingDecision
RandomScheduler::pickNext(Process *previous)
{
    if (previous != nullptr && previous->runnable())
        enqueue(*previous);

    // Compact out finished processes.
    ready_.erase(std::remove_if(ready_.begin(), ready_.end(),
                                [](Process *p) { return !p->runnable(); }),
                 ready_.end());
    if (ready_.empty())
        return SchedulingDecision{};

    const std::size_t idx = rng_.below(ready_.size());
    Process *chosen = ready_[idx];
    ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(idx));
    return SchedulingDecision{chosen, rng_.inRange(1, maxSlice_), 0};
}

} // namespace uldma
