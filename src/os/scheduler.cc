#include "os/scheduler.hh"

#include <algorithm>

#include "util/logging.hh"

namespace uldma {

// ---------------------------------------------------------------------
// RoundRobinScheduler
// ---------------------------------------------------------------------

void
RoundRobinScheduler::enqueue(Process &process)
{
    if (std::find(ready_.begin(), ready_.end(), &process) == ready_.end())
        ready_.push_back(&process);
}

SchedulingDecision
RoundRobinScheduler::pickNext(Process *previous)
{
    if (previous != nullptr && previous->runnable())
        enqueue(*previous);

    while (!ready_.empty()) {
        Process *candidate = ready_.front();
        ready_.pop_front();
        if (!candidate->runnable())
            continue;
        return SchedulingDecision{candidate, 0, quantum_};
    }
    return SchedulingDecision{};
}

// ---------------------------------------------------------------------
// ScriptedScheduler
// ---------------------------------------------------------------------

void
ScriptedScheduler::enqueue(Process &process)
{
    if (std::find(ready_.begin(), ready_.end(), &process) == ready_.end())
        ready_.push_back(&process);
}

SchedulingDecision
ScriptedScheduler::pickNext(Process *previous)
{
    if (previous != nullptr && previous->runnable())
        enqueue(*previous);

    // Scripted phase: find the next slice whose pid is still runnable.
    while (cursor_ < script_.size()) {
        const Slice slice = script_[cursor_];
        ++cursor_;
        auto it = std::find_if(ready_.begin(), ready_.end(),
                               [&](Process *p) {
                                   return p->pid() == slice.pid &&
                                          p->runnable();
                               });
        if (it == ready_.end())
            continue;   // target exited early; skip this slice
        Process *chosen = *it;
        ready_.erase(it);
        return SchedulingDecision{chosen, slice.instructions, 0};
    }

    // Drain phase: run-to-completion round robin.
    while (!ready_.empty()) {
        Process *candidate = ready_.front();
        ready_.pop_front();
        if (!candidate->runnable())
            continue;
        return SchedulingDecision{candidate, 0, 0};
    }
    return SchedulingDecision{};
}

// ---------------------------------------------------------------------
// PreemptionScheduler
// ---------------------------------------------------------------------

void
PreemptionScheduler::enqueue(Process &process)
{
    if (std::find(ready_.begin(), ready_.end(), &process) == ready_.end())
        ready_.push_back(&process);
}

Process *
PreemptionScheduler::takeRunnable(Pid pid)
{
    auto it = std::find_if(ready_.begin(), ready_.end(),
                           [&](Process *p) {
                               return p->pid() == pid && p->runnable();
                           });
    if (it == ready_.end())
        return nullptr;
    Process *chosen = *it;
    ready_.erase(it);
    return chosen;
}

SchedulingDecision
PreemptionScheduler::pickNext(Process *previous)
{
    if (previous != nullptr && previous->runnable())
        enqueue(*previous);

    for (;;) {
        if (pendingGap_) {
            // The victim just reached a boundary: give the intruder
            // one gap.  A repeated boundary lands here twice in a row.
            pendingGap_ = false;
            if (Process *in = takeRunnable(intruder_)) {
                ++delivered_;
                return SchedulingDecision{in, gap_, 0};
            }
            continue;   // intruder already finished; fall through
        }
        if (cursor_ >= boundaries_.size())
            break;
        const std::uint64_t boundary = boundaries_[cursor_];
        ++cursor_;
        const std::uint64_t delta =
            boundary > victimGiven_ ? boundary - victimGiven_ : 0;
        if (boundary > victimGiven_)
            victimGiven_ = boundary;
        pendingGap_ = true;
        // A zero-length victim slice cannot be issued (an instruction
        // quantum of 0 means "no cap"), so back-to-back boundaries
        // collapse into consecutive intruder gaps.
        if (delta > 0) {
            if (Process *v = takeRunnable(victim_))
                return SchedulingDecision{v, delta, 0};
            // Victim exited before this boundary; still run the gap.
        }
    }

    // Drain phase: run-to-completion round robin.
    while (!ready_.empty()) {
        Process *candidate = ready_.front();
        ready_.pop_front();
        if (!candidate->runnable())
            continue;
        return SchedulingDecision{candidate, 0, 0};
    }
    return SchedulingDecision{};
}

// ---------------------------------------------------------------------
// RandomScheduler
// ---------------------------------------------------------------------

void
RandomScheduler::enqueue(Process &process)
{
    if (std::find(ready_.begin(), ready_.end(), &process) == ready_.end())
        ready_.push_back(&process);
}

SchedulingDecision
RandomScheduler::pickNext(Process *previous)
{
    if (previous != nullptr && previous->runnable())
        enqueue(*previous);

    // Compact out finished processes.
    ready_.erase(std::remove_if(ready_.begin(), ready_.end(),
                                [](Process *p) { return !p->runnable(); }),
                 ready_.end());
    if (ready_.empty())
        return SchedulingDecision{};

    const std::size_t idx = rng_.below(ready_.size());
    Process *chosen = ready_[idx];
    ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(idx));
    return SchedulingDecision{chosen, rng_.inRange(1, maxSlice_), 0};
}

} // namespace uldma
