/**
 * @file
 * CPU schedulers.  The scheduler decides which process runs next and
 * for how long — and since the paper's entire atomicity problem is
 * "what happens when the scheduler preempts a process between two
 * accesses", we provide:
 *
 *  - RoundRobinScheduler: a normal time-sliced scheduler (quantum in
 *    ticks), for realistic workloads and randomized-preemption
 *    property tests;
 *  - ScriptedScheduler: replays an exact list of (pid, #instructions)
 *    slices, to force the precise interleavings of figures 5, 6, 8.
 */

#ifndef ULDMA_OS_SCHEDULER_HH
#define ULDMA_OS_SCHEDULER_HH

#include <deque>
#include <vector>

#include "os/process.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace uldma {

/** What the scheduler decided. */
struct SchedulingDecision
{
    Process *next = nullptr;       ///< nullptr = idle
    /** Preempt after this many instructions (0 = no instruction cap). */
    std::uint64_t instructionQuantum = 0;
    /** Preempt after this much time (0 = no time cap). */
    Tick timeQuantum = 0;
};

/**
 * Scheduling policy interface.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** A process became runnable (created or yielded back). */
    virtual void enqueue(Process &process) = 0;

    /**
     * Pick the next process among runnable ones.  @p previous is the
     * process that just stopped running (may be nullptr, may be
     * finished).  Runnable processes not chosen stay queued.
     */
    virtual SchedulingDecision pickNext(Process *previous) = 0;
};

/**
 * Classic round-robin with a fixed time quantum.
 */
class RoundRobinScheduler : public Scheduler
{
  public:
    explicit RoundRobinScheduler(Tick quantum = 100 * 1000 * 1000 /*100us*/)
        : quantum_(quantum)
    {}

    void enqueue(Process &process) override;
    SchedulingDecision pickNext(Process *previous) override;

    Tick quantum() const { return quantum_; }
    void setQuantum(Tick q) { quantum_ = q; }

  private:
    Tick quantum_;
    std::deque<Process *> ready_;
};

/**
 * Replays an exact interleaving: run pid X for N instructions, then
 * pid Y for M instructions, ...  After the script is exhausted the
 * scheduler degrades to run-to-completion round-robin so programs can
 * finish.
 */
class ScriptedScheduler : public Scheduler
{
  public:
    struct Slice
    {
        Pid pid;
        std::uint64_t instructions;
    };

    explicit ScriptedScheduler(std::vector<Slice> script)
        : script_(std::move(script))
    {}

    void enqueue(Process &process) override;
    SchedulingDecision pickNext(Process *previous) override;

    bool scriptExhausted() const { return cursor_ >= script_.size(); }

  private:
    std::vector<Slice> script_;
    std::size_t cursor_ = 0;
    std::deque<Process *> ready_;
};

/**
 * The model checker's scheduler (src/check): runs a designated victim
 * process, interrupting it at an explicit list of instruction-count
 * boundaries; at each boundary the intruder process runs for a fixed
 * gap of instructions before the victim resumes.
 *
 * Boundaries are *absolute* victim instruction counts and must be
 * non-decreasing; a repeated boundary means the intruder is dispatched
 * twice back to back with no victim instruction in between.  Once all
 * boundaries are consumed the scheduler degrades to run-to-completion
 * round robin so both programs can finish.
 */
class PreemptionScheduler : public Scheduler
{
  public:
    PreemptionScheduler(Pid victim, Pid intruder,
                        std::vector<std::uint64_t> boundaries,
                        std::uint64_t gap_instructions)
        : victim_(victim), intruder_(intruder),
          boundaries_(std::move(boundaries)), gap_(gap_instructions)
    {}

    void enqueue(Process &process) override;
    SchedulingDecision pickNext(Process *previous) override;

    /** How many intruder gaps have actually been dispatched. */
    std::size_t preemptionsDelivered() const { return delivered_; }

  private:
    Process *takeRunnable(Pid pid);

    Pid victim_;
    Pid intruder_;
    std::vector<std::uint64_t> boundaries_;
    std::uint64_t gap_;

    /// Victim instructions granted so far (sum of issued slice caps).
    std::uint64_t victimGiven_ = 0;
    std::size_t cursor_ = 0;
    bool pendingGap_ = false;
    std::size_t delivered_ = 0;
    std::deque<Process *> ready_;
};

/**
 * Randomized slicing: each decision runs a uniformly chosen runnable
 * process for a uniformly chosen instruction count in
 * [1, maxSliceInstructions].  Used by property tests to explore the
 * interleaving space of the protocols.
 */
class RandomScheduler : public Scheduler
{
  public:
    RandomScheduler(std::uint64_t seed, std::uint64_t max_slice)
        : rng_(seed), maxSlice_(max_slice)
    {}

    void enqueue(Process &process) override;
    SchedulingDecision pickNext(Process *previous) override;

  private:
    Random rng_;
    std::uint64_t maxSlice_;
    std::vector<Process *> ready_;
};

} // namespace uldma

#endif // ULDMA_OS_SCHEDULER_HH
