/**
 * @file
 * System-call numbers and ABI of the simulated UNIX-like kernel.
 *
 * Arguments travel in registers a0..a3; the result comes back in v0.
 * Only the *runtime* services are syscalls; setup services (process
 * creation, memory allocation, shadow-mapping creation, key issue) are
 * "boot/mmap-time" kernel facilities invoked from host code, because
 * the paper's protocols pay them once at initialization, outside the
 * measured path.
 */

#ifndef ULDMA_OS_SYSCALLS_HH
#define ULDMA_OS_SYSCALLS_HH

#include <cstdint>

namespace uldma::sys {

/** Empty syscall: measures bare trap overhead (lmbench-style [10]). */
inline constexpr std::uint64_t noop = 0;

/**
 * Kernel-level DMA (paper §2.2, figure 1):
 *   a0 = vsource, a1 = vdestination, a2 = size.
 * Returns 0 on success, ~0 on failure.
 */
inline constexpr std::uint64_t dma = 1;

/** Poll the kernel DMA channel: returns remaining bytes (~0 failed). */
inline constexpr std::uint64_t dmaPoll = 2;

/**
 * Kernel-level atomic operation (baseline for paper §3.5):
 *   a0 = vaddr, a1 = opcode (AtomicOp), a2 = operand1, a3 = operand2.
 * Returns the old value.
 */
inline constexpr std::uint64_t atomic = 3;

/** Voluntary reschedule request (same as the Yield micro-op). */
inline constexpr std::uint64_t yield = 4;

/**
 * Block until the kernel DMA channel's current transfer completes
 * (interrupt-driven: the process sleeps, the engine's completion
 * interrupt wakes it).  Returns immediately if nothing is in flight.
 */
inline constexpr std::uint64_t dmaWait = 5;

/**
 * Block until the calling process's descriptor ring is idle (every
 * started ring transfer completed).  Only meaningful under the
 * interrupt-coalescing completion policy — the engine's coalesced
 * interrupt wakes the sleeper; under the polling policy it returns
 * immediately (poll the completion records instead, docs/RING.md).
 */
inline constexpr std::uint64_t ringWait = 6;

/**
 * Map [a0, a0+a1) of the caller's address space into the DMA engine's
 * I/O page table (docs/IOMMU.md) with the rights of the user mapping.
 * Under PinPolicy::OnMap the pages are pinned too; pin-budget
 * exhaustion fails the call.  Returns 0 on success, ~0 on failure.
 */
inline constexpr std::uint64_t iommuMap = 7;

/** Remove [a0, a0+a1) from the caller's I/O page table (and drop the
 *  pins).  Returns 0 on success, ~0 on failure. */
inline constexpr std::uint64_t iommuUnmap = 8;

/** Pin already-iommu-mapped [a0, a0+a1) for device access.  Returns 0
 *  on success, ~0 when a page is unmapped or the budget is full. */
inline constexpr std::uint64_t iommuPin = 9;

/**
 * Grant a DMA capability over [a0, a0+a1) of the caller's address
 * space with QoS rate class a2 (docs/CAPABILITIES.md).  Returns the
 * slot index, or ~0 when no slot is free / the engine has no
 * capability table / the range is bad.
 */
inline constexpr std::uint64_t capGrant = 10;

/** Delegate the caller's capability slot a0 to process a1: the target
 *  gets the presentation page and the current capword.  Returns 0 on
 *  success, ~0 on failure. */
inline constexpr std::uint64_t capDelegate = 11;

/**
 * Revoke the caller's capability slot a0: the engine bumps the slot
 * generation (every outstanding capword — including delegated copies —
 * goes stale and fails closed, even mid-transfer) and the kernel
 * re-arms the slot with a fresh secret for the owner.  Returns 0 on
 * success, ~0 on failure.
 */
inline constexpr std::uint64_t capRevoke = 12;

} // namespace uldma::sys

#endif // ULDMA_OS_SYSCALLS_HH
