#include "os/kernel.hh"

#include <algorithm>

#include "prof/profiler.hh"
#include "sim/span.hh"
#include "sim/trace.hh"
#include "util/logging.hh"

namespace uldma {

Kernel::Kernel(std::string name, Cpu &cpu, Scheduler &scheduler,
               const KernelParams &params)
    : name_(std::move(name)), cpu_(cpu), scheduler_(scheduler),
      params_(params),
      keyRng_(0xF0A7'0000'0000'0001ULL ^ (cpu.node() + 1)),
      statsGroup_(name_)
{
    cpu_.setOs(this);
    statsGroup_.addScalar("context_switches", &switches_,
                          "context switches performed");
    statsGroup_.addScalar("syscalls", &syscalls_, "system calls handled");
    statsGroup_.addScalar("faulted_processes", &faults_,
                          "processes killed by memory faults");
    statsGroup_.addScalar("hook_invocations", &hookRuns_,
                          "context-switch hook executions (kernel mods)");
    statsGroup_.addScalar("dma_waits", &dmaWaits_,
                          "processes blocked in sys::dmaWait");
    statsGroup_.addScalar("dma_interrupts", &dmaInterrupts_,
                          "kernel-channel completion interrupts");
    statsGroup_.addScalar("ring_waits", &ringWaits_,
                          "processes blocked in sys::ringWait");
    statsGroup_.addScalar("ring_interrupts", &ringInterrupts_,
                          "coalesced ring completion interrupts");
}

void
Kernel::setDmaEngine(DmaEngine *engine)
{
    engine_ = engine;
    if (engine_ == nullptr)
        return;
    // Wire the completion interrupt: wake any process blocked in
    // sys::dmaWait when the kernel channel's transfer finishes.
    engine_->setKernelCompletionHandler(
        [this]() { onKernelDmaInterrupt(); });
    // Ring completion interrupts (coalescing policy) wake processes
    // blocked in sys::ringWait on that ring's context.
    engine_->setRingCompletionHandler(
        [this](unsigned ctx) { onRingDmaInterrupt(ctx); });
    if (engine_->iommu() != nullptr) {
        // Translation-fault fix-up under IommuFaultPolicy::Trap.  The
        // kernel-side counters join the stats group only when the
        // engine has an IOMMU, keeping non-IOMMU stats documents
        // byte-identical.
        engine_->setIommuFaultHandler(
            [this](unsigned ctx, Addr iova, bool is_write) {
                return onIommuFault(ctx, iova, is_write);
            });
        statsGroup_.addScalar("iommu_maps", &iommuMaps_,
                              "pages mapped into I/O page tables");
        statsGroup_.addScalar("iommu_fixups", &iommuFixups_,
                              "IOMMU faults repaired and resumed");
    }
    if (engine_->cap() != nullptr) {
        // Same byte-identity rule for the capability family's
        // kernel-side counters.
        statsGroup_.addScalar("cap_grants", &capGrants_,
                              "capability slots granted");
        statsGroup_.addScalar("cap_delegations", &capDelegations_,
                              "capability slots delegated");
        statsGroup_.addScalar("cap_revocations", &capRevocations_,
                              "capability slots revoked and re-armed");
    }
    // Tell the engine how long after a trap its SIZE write physically
    // lands (kernel entry + two software translations), so
    // kernel-channel transfers start at the honest wall-clock time.
    const Tick delay = cyclesToTicks(params_.syscallOverheadCycles * 3 / 4 +
                                     2 * params_.translateCycles);
    Packet pkt = Packet::makeWrite(
        engine_->params().kernelRegsBase + kregs::startDelay, delay);
    cpu_.kernelBusAccess(pkt);
}

// ---------------------------------------------------------------------
// Process lifecycle.
// ---------------------------------------------------------------------

Process &
Kernel::createProcess(std::string process_name)
{
    processes_.push_back(
        std::make_unique<Process>(nextPid_++, std::move(process_name)));
    return *processes_.back();
}

Process &
Kernel::process(Pid pid)
{
    for (auto &p : processes_) {
        if (p->pid() == pid)
            return *p;
    }
    ULDMA_PANIC(name_, ": no process with pid ", pid);
}

void
Kernel::launch(Process &process, Program program)
{
    process.context().setProgram(std::move(program));
    scheduler_.enqueue(process);
}

Process &
Kernel::spawn(const std::string &process_name,
              const std::function<Program(Process &)> &setup)
{
    Process &process = createProcess(process_name);
    launch(process, setup(process));
    return process;
}

void
Kernel::scheduleFirst()
{
    doContextSwitch();
    cpu_.start();
}

bool
Kernel::allFinished() const
{
    for (const auto &p : processes_) {
        if (!p->finished())
            return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Memory services.
// ---------------------------------------------------------------------

Addr
Kernel::allocFrames(Addr npages)
{
    const Addr base = nextFreeFrame_ << pageShift;
    ULDMA_ASSERT(base + npages * pageSize <= cpu_.memory().size(),
                 name_, ": out of physical memory");
    nextFreeFrame_ += npages;
    return base;
}

Addr
Kernel::allocate(Process &process, Addr bytes, Rights rights)
{
    ULDMA_ASSERT(bytes > 0, "zero-byte allocation");
    const Addr npages = divCeil(bytes, pageSize);
    const Addr paddr = allocFrames(npages);
    const Addr vaddr = process.allocCursor();
    process.pageTable().mapRange(vaddr, paddr, npages, rights);
    // Leave a guard page between allocations.
    process.setAllocCursor(vaddr + (npages + 1) * pageSize);
    return vaddr;
}

Addr
Kernel::mapShared(Process &owner, Addr owner_vaddr, Addr bytes,
                  Process &other, Rights rights)
{
    const Translation xlate =
        translateFor(owner, owner_vaddr, Rights::None);
    ULDMA_ASSERT(xlate.ok(), "mapShared: owner address not mapped");
    const Addr npages = divCeil(bytes + pageOffset(owner_vaddr), pageSize);
    const Addr vaddr = other.allocCursor() + pageOffset(owner_vaddr);
    other.pageTable().mapRange(pageAlignDown(vaddr),
                               pageAlignDown(xlate.paddr), npages, rights);
    other.setAllocCursor(pageAlignDown(vaddr) + (npages + 1) * pageSize);
    return vaddr;
}

Addr
Kernel::mapRemoteWindow(Process &process, NodeId node, Addr remote_paddr,
                        Addr bytes, Rights rights)
{
    ULDMA_ASSERT(nic_ != nullptr, "no NIC attached");
    ULDMA_ASSERT(pageOffset(remote_paddr) == 0,
                 "remote window mapping must be page aligned");
    const Addr npages = divCeil(bytes, pageSize);
    const Addr window = nic_->remoteWindowAddr(node, remote_paddr);
    const Addr vaddr = process.allocCursor();
    process.pageTable().mapRange(vaddr, window, npages, rights,
                                 /*uncacheable=*/true);
    process.setAllocCursor(vaddr + (npages + 1) * pageSize);
    return vaddr;
}

Translation
Kernel::translateFor(Process &process, Addr vaddr, Rights need) const
{
    return process.pageTable().translate(vaddr, need);
}

// ---------------------------------------------------------------------
// User-level DMA setup services.
// ---------------------------------------------------------------------

void
Kernel::createShadowMappings(Process &process, Addr vaddr, Addr bytes)
{
    ULDMA_ASSERT(engine_ != nullptr, "no DMA engine attached");
    const unsigned ctx = process.dmaGrant().shadowContext.value_or(0);
    const Addr first = pageAlignDown(vaddr);
    const Addr last = pageAlignDown(vaddr + bytes - 1);
    for (Addr page = first; page <= last; page += pageSize) {
        const auto pte = process.pageTable().lookup(page);
        ULDMA_ASSERT(pte.has_value(),
                     "createShadowMappings: page not mapped");
        const Addr paddr = pte->pfn << pageShift;
        const Addr shadow_paddr = engine_->params().shadowAddr(paddr, ctx);
        const Addr shadow_vaddr = shadowVirtualBase + paddr;
        // Shadow pages mirror the rights of the real mapping, so the
        // protection argument of §2.3 holds: you can only name a
        // physical page you could already touch, in the same way.
        process.pageTable().mapPage(shadow_vaddr, shadow_paddr,
                                    pte->rights, /*uncacheable=*/true);
    }
}

Addr
Kernel::shadowVaddrFor(Process &process, Addr vaddr) const
{
    const Translation xlate = translateFor(process, vaddr, Rights::None);
    ULDMA_ASSERT(xlate.ok(), "shadowVaddrFor: address not mapped");
    return shadowVirtualBase + xlate.paddr;
}

bool
Kernel::grantKeyContext(Process &process)
{
    ULDMA_ASSERT(engine_ != nullptr, "no DMA engine attached");
    if (keyContextOwner_.empty())
        keyContextOwner_.assign(engine_->params().numContexts, invalidPid);

    for (unsigned ctx = 0; ctx < keyContextOwner_.size(); ++ctx) {
        if (keyContextOwner_[ctx] != invalidPid)
            continue;
        keyContextOwner_[ctx] = process.pid();

        // Draw a fresh ~56-bit key and program it into the engine
        // through the privileged register block.
        const std::uint64_t key = keyRng_.next64() & mask(keyfield::keyBits);
        Packet sel = Packet::makeWrite(
            engine_->params().kernelRegsBase + kregs::keyCtxSelect, ctx);
        cpu_.kernelBusAccess(sel);
        Packet val = Packet::makeWrite(
            engine_->params().kernelRegsBase + kregs::keyValue, key);
        cpu_.kernelBusAccess(val);

        process.dmaGrant().keyContext = ctx;
        process.dmaGrant().key = key;
        mapContextPage(process);

        // The same grant covers the atomic unit (keyed §3.5
        // adaptation): program the key and map its context page too.
        if (atomicUnit_ != nullptr &&
            ctx < atomicUnit_->params().numContexts) {
            Packet asel = Packet::makeWrite(
                atomicUnit_->params().kernelRegsBase +
                    akregs::keyCtxSelect,
                ctx);
            cpu_.kernelBusAccess(asel);
            Packet aval = Packet::makeWrite(
                atomicUnit_->params().kernelRegsBase + akregs::keyValue,
                key);
            cpu_.kernelBusAccess(aval);

            const Addr avaddr = contextVirtualBase + 0x100000;
            process.pageTable().mapPage(
                avaddr, atomicUnit_->contextPageAddr(ctx),
                Rights::ReadWrite, /*uncacheable=*/true);
            process.dmaGrant().atomicContextPageVaddr = avaddr;
        }
        return true;
    }
    return false;   // all contexts taken: fall back to kernel DMA
}

void
Kernel::revokeKeyContext(Process &process)
{
    auto &grant = process.dmaGrant();
    if (!grant.keyContext)
        return;
    const unsigned ctx = *grant.keyContext;
    keyContextOwner_[ctx] = invalidPid;
    Packet reset = Packet::makeWrite(
        engine_->params().kernelRegsBase + kregs::ctxReset, ctx);
    cpu_.kernelBusAccess(reset);
    if (atomicUnit_ != nullptr &&
        ctx < atomicUnit_->params().numContexts) {
        Packet areset = Packet::makeWrite(
            atomicUnit_->params().kernelRegsBase + akregs::ctxReset, ctx);
        cpu_.kernelBusAccess(areset);
    }
    grant.keyContext.reset();
    grant.key = 0;
    grant.atomicContextPageVaddr = 0;
}

bool
Kernel::grantShadowContext(Process &process)
{
    ULDMA_ASSERT(engine_ != nullptr, "no DMA engine attached");
    const unsigned slots = 1u << engine_->params().ctxIdBits;
    if (shadowContextOwner_.empty())
        shadowContextOwner_.assign(slots, invalidPid);

    for (unsigned ctx = 0; ctx < slots; ++ctx) {
        if (shadowContextOwner_[ctx] != invalidPid)
            continue;
        shadowContextOwner_[ctx] = process.pid();
        process.dmaGrant().shadowContext = ctx;
        return true;
    }
    return false;   // §3.2: "the rest will have to go through the kernel"
}

void
Kernel::setupMapOut(Process &process, Addr vaddr, Addr target_paddr)
{
    ULDMA_ASSERT(engine_ != nullptr, "no DMA engine attached");
    const Translation xlate = translateFor(process, vaddr, Rights::Read);
    ULDMA_ASSERT(xlate.ok(), "setupMapOut: source page not mapped");
    ULDMA_ASSERT(pageOffset(target_paddr) == 0,
                 "mapped-out target must be page aligned");

    Packet pfn = Packet::makeWrite(
        engine_->params().kernelRegsBase + kregs::mapOutPfn,
        pageNumber(xlate.paddr));
    cpu_.kernelBusAccess(pfn);
    Packet target = Packet::makeWrite(
        engine_->params().kernelRegsBase + kregs::mapOutTarget,
        target_paddr);
    cpu_.kernelBusAccess(target);
}

void
Kernel::createAtomicShadowMappings(Process &process, Addr vaddr,
                                   Addr bytes, AtomicOp op)
{
    ULDMA_ASSERT(atomicUnit_ != nullptr, "no atomic unit attached");
    const unsigned ctx = process.dmaGrant().shadowContext.value_or(0);
    const Addr first = pageAlignDown(vaddr);
    const Addr last = pageAlignDown(vaddr + bytes - 1);
    for (Addr page = first; page <= last; page += pageSize) {
        const auto pte = process.pageTable().lookup(page);
        ULDMA_ASSERT(pte.has_value(),
                     "createAtomicShadowMappings: page not mapped");
        const Addr paddr = pte->pfn << pageShift;
        const Addr shadow_paddr =
            atomicUnit_->params().shadowAddr(op, paddr, ctx);
        const Addr shadow_vaddr = atomicShadowVirtualFor(op, paddr);
        // Atomics both read and modify the target, so require RW.
        if (!allows(pte->rights, Rights::ReadWrite))
            continue;
        process.pageTable().mapPage(shadow_vaddr, shadow_paddr,
                                    Rights::ReadWrite,
                                    /*uncacheable=*/true);
    }
}

Addr
Kernel::atomicShadowVaddrFor(Process &process, Addr vaddr,
                             AtomicOp op) const
{
    const Translation xlate = translateFor(process, vaddr, Rights::None);
    ULDMA_ASSERT(xlate.ok(), "atomicShadowVaddrFor: address not mapped");
    return atomicShadowVirtualFor(op, xlate.paddr);
}

Addr
Kernel::mapContextPage(Process &process)
{
    ULDMA_ASSERT(engine_ != nullptr, "no DMA engine attached");
    auto &grant = process.dmaGrant();
    ULDMA_ASSERT(grant.keyContext.has_value(),
                 "mapContextPage: no register context granted");
    const Addr paddr = engine_->contextPageAddr(*grant.keyContext);
    const Addr vaddr = contextVirtualBase;
    process.pageTable().mapPage(vaddr, paddr, Rights::ReadWrite,
                                /*uncacheable=*/true);
    grant.contextPageVaddr = vaddr;
    return vaddr;
}

bool
Kernel::setupRing(Process &process, unsigned slots, std::uint64_t policy,
                  unsigned coalesce)
{
    ULDMA_ASSERT(engine_ != nullptr, "no DMA engine attached");
    ULDMA_ASSERT(slots > 0, "setupRing: need at least one slot");

    auto &grant = process.dmaGrant();
    // The ring doorbell rides on the key-gated register-context page,
    // so a ring grant implies a key grant.
    if (!grant.keyContext && !grantKeyContext(process))
        return false;
    const unsigned ctx = *grant.keyContext;

    // User-mapped descriptor ring and completion records.  allocate()
    // hands out physically contiguous frames, which is what the
    // engine's slot arithmetic assumes.
    const Addr desc_vaddr = allocate(
        process, Addr(slots) * ringdesc::descBytes, Rights::ReadWrite);
    const Addr cpl_vaddr = allocate(
        process, Addr(slots) * ringdesc::cplBytes, Rights::ReadWrite);
    const Translation desc_x =
        translateFor(process, desc_vaddr, Rights::ReadWrite);
    const Translation cpl_x =
        translateFor(process, cpl_vaddr, Rights::ReadWrite);
    ULDMA_ASSERT(desc_x.ok() && cpl_x.ok(),
                 "setupRing: ring regions not mapped");

    // Program the privileged ring registers: select, bases, then the
    // config word last (the commit point on the engine side).
    const Addr base = engine_->params().kernelRegsBase;
    Packet sel = Packet::makeWrite(base + kregs::ringCtxSelect, ctx);
    cpu_.kernelBusAccess(sel);
    Packet db = Packet::makeWrite(base + kregs::ringBase, desc_x.paddr);
    cpu_.kernelBusAccess(db);
    Packet cb = Packet::makeWrite(base + kregs::ringCplBase, cpl_x.paddr);
    cpu_.kernelBusAccess(cb);
    Packet cfg = Packet::makeWrite(
        base + kregs::ringConfig,
        ringdesc::packConfig(slots, policy, coalesce));
    cpu_.kernelBusAccess(cfg);

    grant.ringConfigured = true;
    grant.ringDescVaddr = desc_vaddr;
    grant.ringCplVaddr = cpl_vaddr;
    grant.ringSlots = slots;
    grant.ringPolicy = policy;
    grant.ringCoalesce = std::max(1u, coalesce);
    grant.ringEnqueueSeq = 0;
    grant.ringIommu = engine_->iommu() != nullptr;

    // The ring's own pages are legal DMA endpoints (a chained
    // descriptor may stage data through them in tests).
    authorizeRingDma(process, desc_vaddr,
                     Addr(slots) * ringdesc::descBytes);
    authorizeRingDma(process, cpl_vaddr, Addr(slots) * ringdesc::cplBytes);
    if (grant.ringIommu) {
        // Same courtesy through the IOMMU: the ring's own pages are
        // translatable endpoints for chained descriptors.
        const bool pin = engine_->iommu()->params().pinPolicy ==
                         PinPolicy::OnMap;
        iommuMapRange(process, desc_vaddr,
                      Addr(slots) * ringdesc::descBytes, pin);
        iommuMapRange(process, cpl_vaddr,
                      Addr(slots) * ringdesc::cplBytes, pin);
    }
    return true;
}

void
Kernel::authorizeRingDma(Process &process, Addr vaddr, Addr bytes)
{
    ULDMA_ASSERT(engine_ != nullptr, "no DMA engine attached");
    auto &grant = process.dmaGrant();
    ULDMA_ASSERT(grant.keyContext.has_value(),
                 "authorizeRingDma: no register context granted");
    ULDMA_ASSERT(bytes > 0, "authorizeRingDma: empty range");
    const unsigned ctx = *grant.keyContext;
    const Addr base = engine_->params().kernelRegsBase;

    // Translate page by page and program one frame span per physically
    // contiguous run (the common case is a single span, because
    // allocate() is contiguous).
    const Addr first = pageAlignDown(vaddr);
    const Addr last = pageAlignDown(vaddr + bytes - 1);
    Addr span_base = 0;
    Addr span_limit = 0;
    const auto flush = [&]() {
        if (span_limit <= span_base)
            return;
        Packet sel = Packet::makeWrite(base + kregs::ringCtxSelect, ctx);
        cpu_.kernelBusAccess(sel);
        Packet fb = Packet::makeWrite(base + kregs::ringFrameBase,
                                      span_base);
        cpu_.kernelBusAccess(fb);
        Packet fl = Packet::makeWrite(base + kregs::ringFrameLimit,
                                      span_limit);
        cpu_.kernelBusAccess(fl);
    };
    for (Addr page = first; page <= last; page += pageSize) {
        const auto pte = process.pageTable().lookup(page);
        ULDMA_ASSERT(pte.has_value(),
                     "authorizeRingDma: page not mapped");
        const Addr paddr = pte->pfn << pageShift;
        if (span_limit == paddr) {
            span_limit += pageSize;   // extend the contiguous run
        } else {
            flush();
            span_base = paddr;
            span_limit = paddr + pageSize;
        }
    }
    flush();
}

// ---------------------------------------------------------------------
// IOMMU services (docs/IOMMU.md).
// ---------------------------------------------------------------------

bool
Kernel::iommuMapRange(Process &process, Addr vaddr, Addr bytes, bool pin)
{
    ULDMA_ASSERT(engine_ != nullptr, "no DMA engine attached");
    ULDMA_ASSERT(engine_->iommu() != nullptr,
                 "iommuMapRange: engine has no IOMMU");
    auto &grant = process.dmaGrant();
    ULDMA_ASSERT(grant.keyContext.has_value(),
                 "iommuMapRange: no register context granted");
    ULDMA_ASSERT(bytes > 0, "iommuMapRange: empty range");
    const unsigned ctx = *grant.keyContext;
    const Addr base = engine_->params().kernelRegsBase;

    Packet sel = Packet::makeWrite(base + kregs::iommuCtxSelect, ctx);
    cpu_.kernelBusAccess(sel);

    // IOVA space is the process's own virtual address space: the same
    // pointer a process passes to the engine in a descriptor is the
    // one the kernel maps here, so user code needs no address
    // arithmetic at all.
    bool ok = true;
    const Addr first = pageAlignDown(vaddr);
    const Addr last = pageAlignDown(vaddr + bytes - 1);
    for (Addr page = first; page <= last; page += pageSize) {
        const auto pte = process.pageTable().lookup(page);
        if (!pte.has_value()) {
            ok = false;
            continue;
        }
        std::uint64_t entry = pte->pfn << pageShift;
        if (allows(pte->rights, Rights::Read))
            entry |= iommumap::read;
        if (allows(pte->rights, Rights::Write))
            entry |= iommumap::write;
        if (pin)
            entry |= iommumap::pin;
        Packet iv = Packet::makeWrite(base + kregs::iommuIova, page);
        cpu_.kernelBusAccess(iv);
        Packet me = Packet::makeWrite(base + kregs::iommuMapEntry, entry);
        cpu_.kernelBusAccess(me);
        // Read the status back: a failed map-time pin (budget
        // exhaustion) must reach the caller.
        Packet st = Packet::makeRead(base + kregs::iommuStatus);
        cpu_.kernelBusAccess(st);
        if (st.data != dmastatus::ok)
            ok = false;
        ++iommuMaps_;
    }
    return ok;
}

void
Kernel::iommuUnmapRange(Process &process, Addr vaddr, Addr bytes)
{
    ULDMA_ASSERT(engine_ != nullptr, "no DMA engine attached");
    ULDMA_ASSERT(engine_->iommu() != nullptr,
                 "iommuUnmapRange: engine has no IOMMU");
    auto &grant = process.dmaGrant();
    ULDMA_ASSERT(grant.keyContext.has_value(),
                 "iommuUnmapRange: no register context granted");
    ULDMA_ASSERT(bytes > 0, "iommuUnmapRange: empty range");
    const unsigned ctx = *grant.keyContext;
    const Addr base = engine_->params().kernelRegsBase;

    Packet sel = Packet::makeWrite(base + kregs::iommuCtxSelect, ctx);
    cpu_.kernelBusAccess(sel);
    const Addr first = pageAlignDown(vaddr);
    const Addr last = pageAlignDown(vaddr + bytes - 1);
    for (Addr page = first; page <= last; page += pageSize) {
        Packet un = Packet::makeWrite(base + kregs::iommuUnmap, page);
        cpu_.kernelBusAccess(un);
    }
}

bool
Kernel::iommuPinRange(Process &process, Addr vaddr, Addr bytes)
{
    ULDMA_ASSERT(engine_ != nullptr, "no DMA engine attached");
    ULDMA_ASSERT(engine_->iommu() != nullptr,
                 "iommuPinRange: engine has no IOMMU");
    auto &grant = process.dmaGrant();
    ULDMA_ASSERT(grant.keyContext.has_value(),
                 "iommuPinRange: no register context granted");
    ULDMA_ASSERT(bytes > 0, "iommuPinRange: empty range");
    const unsigned ctx = *grant.keyContext;
    const Addr base = engine_->params().kernelRegsBase;

    Packet sel = Packet::makeWrite(base + kregs::iommuCtxSelect, ctx);
    cpu_.kernelBusAccess(sel);
    bool ok = true;
    const Addr first = pageAlignDown(vaddr);
    const Addr last = pageAlignDown(vaddr + bytes - 1);
    for (Addr page = first; page <= last; page += pageSize) {
        Packet pin = Packet::makeWrite(base + kregs::iommuPin, page);
        cpu_.kernelBusAccess(pin);
        Packet st = Packet::makeRead(base + kregs::iommuStatus);
        cpu_.kernelBusAccess(st);
        if (st.data != dmastatus::ok)
            ok = false;
    }
    return ok;
}

// ---------------------------------------------------------------------
// Capability services (docs/CAPABILITIES.md).
// ---------------------------------------------------------------------

int
Kernel::capGrant(Process &process, Addr vaddr, Addr bytes,
                 unsigned rate_class)
{
    ULDMA_ASSERT(engine_ != nullptr, "no DMA engine attached");
    if (engine_->cap() == nullptr || bytes == 0)
        return -1;
    const CapParams &cp = engine_->params().cap;
    if (rate_class >= cp.rateClasses)
        return -1;
    if (capSlotOwner_.empty())
        capSlotOwner_.assign(cp.numSlots, invalidPid);

    int slot = -1;
    for (unsigned s = 0; s < capSlotOwner_.size(); ++s) {
        if (capSlotOwner_[s] == invalidPid) {
            slot = static_cast<int>(s);
            break;
        }
    }
    if (slot < 0)
        return -1;   // every slot taken: fall back to kernel DMA

    const Addr base = engine_->params().kernelRegsBase;
    const auto kwrite = [&](Addr off, std::uint64_t v) {
        Packet pkt = Packet::makeWrite(base + off, v);
        cpu_.kernelBusAccess(pkt);
    };
    const auto kstatus = [&]() {
        Packet pkt = Packet::makeRead(base + kregs::capStatus);
        cpu_.kernelBusAccess(pkt);
        return pkt.data;
    };

    kwrite(kregs::capSlotSelect, static_cast<std::uint64_t>(slot));

    // Program one frame span per physically contiguous run (same
    // walk as authorizeRingDma) and take the rights every page allows
    // — the slot gets the intersection.
    bool read_ok = true;
    bool write_ok = true;
    bool spans_ok = true;
    const Addr first = pageAlignDown(vaddr);
    const Addr last = pageAlignDown(vaddr + bytes - 1);
    Addr span_base = 0;
    Addr span_limit = 0;
    const auto flushSpan = [&]() {
        if (span_limit <= span_base)
            return;
        kwrite(kregs::capSpanBase, span_base);
        kwrite(kregs::capSpanLimit, span_limit);
        if (kstatus() != dmastatus::ok)
            spans_ok = false;   // past maxSpansPerSlot
    };
    for (Addr page = first; page <= last && spans_ok; page += pageSize) {
        const auto pte = process.pageTable().lookup(page);
        if (!pte.has_value()) {
            spans_ok = false;
            break;
        }
        read_ok = read_ok && allows(pte->rights, Rights::Read);
        write_ok = write_ok && allows(pte->rights, Rights::Write);
        const Addr paddr = pte->pfn << pageShift;
        if (span_limit == paddr) {
            span_limit += pageSize;   // extend the contiguous run
        } else {
            flushSpan();
            span_base = paddr;
            span_limit = paddr + pageSize;
        }
    }
    if (spans_ok)
        flushSpan();

    std::uint64_t rights = 0;
    if (read_ok)
        rights |= caprights::read;
    if (write_ok)
        rights |= caprights::write;
    if (!spans_ok || rights == 0) {
        // Roll back the partial programming so the slot stays free.
        kwrite(kregs::capOp, capop::invalidate);
        return -1;
    }

    kwrite(kregs::capConfig, capconfig::pack(rights, rate_class));
    const std::uint64_t secret =
        keyRng_.next64() & mask(capfield::secretBits);
    kwrite(kregs::capSecret, secret);
    if (kstatus() != dmastatus::ok) {
        kwrite(kregs::capOp, capop::invalidate);
        return -1;
    }

    capSlotOwner_[static_cast<unsigned>(slot)] = process.pid();
    const std::uint64_t word = capfield::pack(
        static_cast<unsigned>(slot),
        engine_->cap()->generation(static_cast<unsigned>(slot)), secret);

    // Map the slot's presentation page (uncacheable device memory).
    const Addr pvaddr = capVirtualBase + Addr(slot) * pageSize;
    process.pageTable().mapPage(
        pvaddr, engine_->capPageAddr(static_cast<unsigned>(slot)),
        Rights::ReadWrite, /*uncacheable=*/true);

    auto &grant = process.dmaGrant();
    grant.capSlots.push_back(static_cast<unsigned>(slot));
    grant.capPageVaddrs.push_back(pvaddr);
    grant.capWords.push_back(word);
    grant.capRateClasses.push_back(rate_class);
    ++capGrants_;
    ULDMA_TRACE("Kernel", cpu_.clockEdge(), name_, ": cap grant slot ",
                slot, " to pid ", process.pid(), " rate ", rate_class);
    return slot;
}

bool
Kernel::capExtend(Process &owner, unsigned slot, Addr vaddr, Addr bytes)
{
    ULDMA_ASSERT(engine_ != nullptr, "no DMA engine attached");
    if (engine_->cap() == nullptr || bytes == 0 ||
        slot >= capSlotOwner_.size() ||
        capSlotOwner_[slot] != owner.pid()) {
        return false;
    }
    const Addr base = engine_->params().kernelRegsBase;
    Packet sel = Packet::makeWrite(base + kregs::capSlotSelect, slot);
    cpu_.kernelBusAccess(sel);

    bool ok = true;
    const Addr first = pageAlignDown(vaddr);
    const Addr last = pageAlignDown(vaddr + bytes - 1);
    Addr span_base = 0;
    Addr span_limit = 0;
    const auto flushSpan = [&]() {
        if (span_limit <= span_base)
            return;
        Packet sb = Packet::makeWrite(base + kregs::capSpanBase,
                                      span_base);
        cpu_.kernelBusAccess(sb);
        Packet sl = Packet::makeWrite(base + kregs::capSpanLimit,
                                      span_limit);
        cpu_.kernelBusAccess(sl);
        Packet st = Packet::makeRead(base + kregs::capStatus);
        cpu_.kernelBusAccess(st);
        if (st.data != dmastatus::ok)
            ok = false;
    };
    for (Addr page = first; page <= last && ok; page += pageSize) {
        const auto pte = owner.pageTable().lookup(page);
        if (!pte.has_value()) {
            ok = false;
            break;
        }
        const Addr paddr = pte->pfn << pageShift;
        if (span_limit == paddr) {
            span_limit += pageSize;
        } else {
            flushSpan();
            span_base = paddr;
            span_limit = paddr + pageSize;
        }
    }
    if (ok)
        flushSpan();
    return ok;
}

bool
Kernel::capDelegate(Process &owner, unsigned slot, Process &target)
{
    ULDMA_ASSERT(engine_ != nullptr, "no DMA engine attached");
    if (engine_->cap() == nullptr)
        return false;
    const auto &og = owner.dmaGrant();
    std::size_t idx = og.capSlots.size();
    for (std::size_t i = 0; i < og.capSlots.size(); ++i) {
        if (og.capSlots[i] == slot) {
            idx = i;
            break;
        }
    }
    if (idx == og.capSlots.size() ||
        slot >= capSlotOwner_.size() ||
        capSlotOwner_[slot] != owner.pid()) {
        return false;   // only the owner may delegate
    }

    const Addr pvaddr = capVirtualBase + Addr(slot) * pageSize;
    target.pageTable().mapPage(pvaddr, engine_->capPageAddr(slot),
                               Rights::ReadWrite, /*uncacheable=*/true);
    auto &tg = target.dmaGrant();
    tg.capSlots.push_back(slot);
    tg.capPageVaddrs.push_back(pvaddr);
    tg.capWords.push_back(og.capWords[idx]);
    tg.capRateClasses.push_back(og.capRateClasses[idx]);
    ++capDelegations_;
    ULDMA_TRACE("Kernel", cpu_.clockEdge(), name_, ": cap delegate slot ",
                slot, " pid ", owner.pid(), " -> ", target.pid());
    return true;
}

bool
Kernel::capRevoke(Process &owner, unsigned slot)
{
    ULDMA_ASSERT(engine_ != nullptr, "no DMA engine attached");
    if (engine_->cap() == nullptr || slot >= capSlotOwner_.size() ||
        capSlotOwner_[slot] != owner.pid()) {
        return false;
    }

    const Addr base = engine_->params().kernelRegsBase;
    Packet sel = Packet::makeWrite(base + kregs::capSlotSelect, slot);
    cpu_.kernelBusAccess(sel);
    // The generation bump: the engine also fails closed anything the
    // slot has queued or in flight.
    Packet op = Packet::makeWrite(base + kregs::capOp, capop::revoke);
    cpu_.kernelBusAccess(op);

    // Re-arm the owner with a fresh secret; delegates keep their stale
    // capwords and fail closed on the next presentation.
    const std::uint64_t secret =
        keyRng_.next64() & mask(capfield::secretBits);
    Packet sec = Packet::makeWrite(base + kregs::capSecret, secret);
    cpu_.kernelBusAccess(sec);

    auto &grant = owner.dmaGrant();
    for (std::size_t i = 0; i < grant.capSlots.size(); ++i) {
        if (grant.capSlots[i] == slot) {
            grant.capWords[i] = capfield::pack(
                slot, engine_->cap()->generation(slot), secret);
            break;
        }
    }
    ++capRevocations_;
    ULDMA_TRACE("Kernel", cpu_.clockEdge(), name_, ": cap revoke slot ",
                slot, " by pid ", owner.pid());
    return true;
}

// ---------------------------------------------------------------------
// OsCallbacks: traps and scheduling.
// ---------------------------------------------------------------------

SyscallResult
Kernel::syscall(ExecContext &ctx, std::uint64_t number)
{
    ULDMA_PROF_SCOPE("kernel.syscall");
    ++syscalls_;
    ULDMA_TRACE_EVENT(name_, cpu_.clockEdge(), "syscall",
                      "number ", number, " pid ", ctx.pid());
    switch (number) {
      case sys::noop:
        return sysNoop();
      case sys::dma:
        return sysDma(ctx);
      case sys::dmaPoll:
        return sysDmaPoll(ctx);
      case sys::atomic:
        return sysAtomic(ctx);
      case sys::yield: {
        SyscallResult r;
        r.cost = cyclesToTicks(params_.syscallOverheadCycles) + yielded();
        return r;
      }
      case sys::dmaWait:
        return sysDmaWait(ctx);
      case sys::ringWait:
        return sysRingWait(ctx);
      case sys::iommuMap:
        return sysIommuMap(ctx);
      case sys::iommuUnmap:
        return sysIommuUnmap(ctx);
      case sys::iommuPin:
        return sysIommuPin(ctx);
      case sys::capGrant:
        return sysCapGrant(ctx);
      case sys::capDelegate:
        return sysCapDelegate(ctx);
      case sys::capRevoke:
        return sysCapRevoke(ctx);
      default: {
        ULDMA_WARN(name_, ": unknown syscall ", number);
        SyscallResult r;
        r.retval = ~std::uint64_t(0);
        r.cost = cyclesToTicks(params_.syscallOverheadCycles);
        return r;
      }
    }
}

SyscallResult
Kernel::sysNoop()
{
    SyscallResult r;
    r.cost = cyclesToTicks(params_.syscallOverheadCycles);
    return r;
}

SyscallResult
Kernel::sysDma(ExecContext &ctx)
{
    // Figure 1: translate both addresses, check the whole range, then
    // program the engine's registers — all with interrupts off.
    SyscallResult r;
    r.cost = cyclesToTicks(params_.syscallOverheadCycles);
    ULDMA_ASSERT(engine_ != nullptr, "no DMA engine attached");

    Process &proc = process(ctx.pid());
    const Addr vsrc = ctx.reg(reg::a0);
    const Addr vdst = ctx.reg(reg::a1);
    const Addr size = ctx.reg(reg::a2);

    // Span bookkeeping: the kernel method's initiation begins at trap
    // entry, so open here and hand the span to the engine just before
    // programming its registers (kernelStart() adopts it).
    span::SpanId sid = span::invalidSpan;
    if (span::captureOn()) {
        sid = span::tracker().open(engine_->deviceName(), "kernel",
                                   cpu_.now());
    }
    const auto spanReject = [&]() {
        if (span::captureOn())
            span::tracker().reject(sid, cpu_.now());
    };

    r.cost += cyclesToTicks(2 * params_.translateCycles);
    r.retval = ~std::uint64_t(0);

    if (size == 0) {
        spanReject();
        return r;
    }

    // check_size(): verify rights and physical contiguity over the
    // whole transfer range, page by page.
    const Addr npages_src = pageNumber(vsrc + size - 1) - pageNumber(vsrc);
    const Addr npages_dst = pageNumber(vdst + size - 1) - pageNumber(vdst);
    r.cost += cyclesToTicks(params_.perPageCheckCycles *
                            (npages_src + npages_dst + 2));

    const Translation src0 = translateFor(proc, vsrc, Rights::Read);
    const Translation dst0 = translateFor(proc, vdst, Rights::Write);
    if (!src0.ok() || !dst0.ok()) {
        spanReject();
        return r;
    }

    for (Addr off = pageSize - pageOffset(vsrc); off < size;
         off += pageSize) {
        const Translation t = translateFor(proc, vsrc + off, Rights::Read);
        if (!t.ok() || t.paddr != src0.paddr + off) {
            spanReject();
            return r;
        }
    }
    for (Addr off = pageSize - pageOffset(vdst); off < size;
         off += pageSize) {
        const Translation t = translateFor(proc, vdst + off, Rights::Write);
        if (!t.ok() || t.paddr != dst0.paddr + off) {
            spanReject();
            return r;
        }
    }

    // Program the engine: three stores and a status load, uncached.
    if (span::captureOn())
        span::tracker().stageKernel(sid);
    const Addr base = engine_->params().kernelRegsBase;
    Packet w1 = Packet::makeWrite(base + kregs::source, src0.paddr);
    r.cost += cpu_.kernelBusAccess(w1);
    Packet w2 = Packet::makeWrite(base + kregs::destination, dst0.paddr);
    r.cost += cpu_.kernelBusAccess(w2);
    Packet w3 = Packet::makeWrite(base + kregs::size, size);
    r.cost += cpu_.kernelBusAccess(w3);
    Packet s = Packet::makeRead(base + kregs::status);
    r.cost += cpu_.kernelBusAccess(s);

    r.retval = s.data == dmastatus::failure ? ~std::uint64_t(0) : 0;
    return r;
}

SyscallResult
Kernel::sysDmaPoll(ExecContext &ctx)
{
    (void)ctx;
    SyscallResult r;
    r.cost = cyclesToTicks(params_.syscallOverheadCycles);
    ULDMA_ASSERT(engine_ != nullptr, "no DMA engine attached");
    Packet s = Packet::makeRead(engine_->params().kernelRegsBase +
                                kregs::status);
    r.cost += cpu_.kernelBusAccess(s);
    r.retval = s.data;
    return r;
}

SyscallResult
Kernel::sysAtomic(ExecContext &ctx)
{
    SyscallResult r;
    r.cost = cyclesToTicks(params_.syscallOverheadCycles);
    ULDMA_ASSERT(atomicUnit_ != nullptr, "no atomic unit attached");

    Process &proc = process(ctx.pid());
    const Addr vaddr = ctx.reg(reg::a0);
    const std::uint64_t opcode = ctx.reg(reg::a1);
    const std::uint64_t op1 = ctx.reg(reg::a2);
    const std::uint64_t op2 = ctx.reg(reg::a3);

    r.cost += cyclesToTicks(params_.translateCycles);
    const Translation xlate = translateFor(proc, vaddr, Rights::ReadWrite);
    if (!xlate.ok()) {
        r.retval = ~std::uint64_t(0);
        return r;
    }

    const Addr base = atomicUnit_->params().kernelRegsBase;
    Packet w1 = Packet::makeWrite(base + akregs::address, xlate.paddr);
    r.cost += cpu_.kernelBusAccess(w1);
    Packet w2 = Packet::makeWrite(base + akregs::operand1, op1);
    r.cost += cpu_.kernelBusAccess(w2);
    Packet w3 = Packet::makeWrite(base + akregs::operand2, op2);
    r.cost += cpu_.kernelBusAccess(w3);
    Packet w4 = Packet::makeWrite(base + akregs::opcodeExec, opcode);
    r.cost += cpu_.kernelBusAccess(w4);
    Packet res = Packet::makeRead(base + akregs::result);
    r.cost += cpu_.kernelBusAccess(res);
    r.retval = res.data;
    return r;
}

SyscallResult
Kernel::sysDmaWait(ExecContext &ctx)
{
    SyscallResult r;
    r.cost = cyclesToTicks(params_.syscallOverheadCycles);
    ULDMA_ASSERT(engine_ != nullptr, "no DMA engine attached");

    if (!engine_->kernelChannelBusy())
        return r;   // nothing in flight: return immediately

    // Sleep: the process leaves the run queue until the completion
    // interrupt; meanwhile another process (or the idle loop) runs.
    Process &proc = process(ctx.pid());
    proc.context().setState(RunState::Blocked);
    dmaWaiters_.push_back(&proc);
    ++dmaWaits_;
    r.cost += doContextSwitch();
    return r;
}

SyscallResult
Kernel::sysRingWait(ExecContext &ctx)
{
    SyscallResult r;
    r.cost = cyclesToTicks(params_.syscallOverheadCycles);
    ULDMA_ASSERT(engine_ != nullptr, "no DMA engine attached");

    Process &proc = process(ctx.pid());
    const auto &grant = proc.dmaGrant();
    // No ring, polling policy, or idle ring: nothing will interrupt,
    // return immediately (under polling, poll the completion records).
    if (!grant.ringConfigured || !grant.keyContext ||
        grant.ringPolicy != ringdesc::policyCoalesce) {
        return r;
    }
    const unsigned ring_ctx = *grant.keyContext;
    if (engine_->ringOutstanding(ring_ctx) == 0)
        return r;

    proc.context().setState(RunState::Blocked);
    ringWaiters_.emplace_back(&proc, ring_ctx);
    ++ringWaits_;
    r.cost += doContextSwitch();
    return r;
}

SyscallResult
Kernel::sysIommuMap(ExecContext &ctx)
{
    SyscallResult r;
    r.cost = cyclesToTicks(params_.syscallOverheadCycles);
    r.retval = ~std::uint64_t(0);
    if (engine_ == nullptr || engine_->iommu() == nullptr)
        return r;
    Process &proc = process(ctx.pid());
    const Addr vaddr = ctx.reg(reg::a0);
    const Addr bytes = ctx.reg(reg::a1);
    if (bytes == 0 || !proc.dmaGrant().keyContext)
        return r;
    // One software translation per page, like check_size().
    const Addr npages =
        pageNumber(vaddr + bytes - 1) - pageNumber(vaddr) + 1;
    r.cost += cyclesToTicks(params_.translateCycles * npages);
    const bool pin = engine_->iommu()->params().pinPolicy ==
                     PinPolicy::OnMap;
    if (iommuMapRange(proc, vaddr, bytes, pin))
        r.retval = 0;
    return r;
}

SyscallResult
Kernel::sysIommuUnmap(ExecContext &ctx)
{
    SyscallResult r;
    r.cost = cyclesToTicks(params_.syscallOverheadCycles);
    r.retval = ~std::uint64_t(0);
    if (engine_ == nullptr || engine_->iommu() == nullptr)
        return r;
    Process &proc = process(ctx.pid());
    const Addr vaddr = ctx.reg(reg::a0);
    const Addr bytes = ctx.reg(reg::a1);
    if (bytes == 0 || !proc.dmaGrant().keyContext)
        return r;
    iommuUnmapRange(proc, vaddr, bytes);
    r.retval = 0;
    return r;
}

SyscallResult
Kernel::sysIommuPin(ExecContext &ctx)
{
    SyscallResult r;
    r.cost = cyclesToTicks(params_.syscallOverheadCycles);
    r.retval = ~std::uint64_t(0);
    if (engine_ == nullptr || engine_->iommu() == nullptr)
        return r;
    Process &proc = process(ctx.pid());
    const Addr vaddr = ctx.reg(reg::a0);
    const Addr bytes = ctx.reg(reg::a1);
    if (bytes == 0 || !proc.dmaGrant().keyContext)
        return r;
    if (iommuPinRange(proc, vaddr, bytes))
        r.retval = 0;
    return r;
}

SyscallResult
Kernel::sysCapGrant(ExecContext &ctx)
{
    SyscallResult r;
    r.cost = cyclesToTicks(params_.syscallOverheadCycles);
    r.retval = ~std::uint64_t(0);
    if (engine_ == nullptr || engine_->cap() == nullptr)
        return r;
    Process &proc = process(ctx.pid());
    const Addr vaddr = ctx.reg(reg::a0);
    const Addr bytes = ctx.reg(reg::a1);
    const unsigned rate = static_cast<unsigned>(ctx.reg(reg::a2));
    if (bytes == 0)
        return r;
    // One software translation per page, like check_size().
    const Addr npages =
        pageNumber(vaddr + bytes - 1) - pageNumber(vaddr) + 1;
    r.cost += cyclesToTicks(params_.translateCycles * npages);
    const int slot = capGrant(proc, vaddr, bytes, rate);
    if (slot >= 0)
        r.retval = static_cast<std::uint64_t>(slot);
    return r;
}

SyscallResult
Kernel::sysCapDelegate(ExecContext &ctx)
{
    SyscallResult r;
    r.cost = cyclesToTicks(params_.syscallOverheadCycles);
    r.retval = ~std::uint64_t(0);
    if (engine_ == nullptr || engine_->cap() == nullptr)
        return r;
    Process &proc = process(ctx.pid());
    const unsigned slot = static_cast<unsigned>(ctx.reg(reg::a0));
    const Pid target_pid = static_cast<Pid>(ctx.reg(reg::a1));
    Process *target = nullptr;
    for (auto &p : processes_) {
        if (p->pid() == target_pid) {
            target = p.get();
            break;
        }
    }
    if (target == nullptr || target->finished())
        return r;
    if (capDelegate(proc, slot, *target))
        r.retval = 0;
    return r;
}

SyscallResult
Kernel::sysCapRevoke(ExecContext &ctx)
{
    SyscallResult r;
    r.cost = cyclesToTicks(params_.syscallOverheadCycles);
    r.retval = ~std::uint64_t(0);
    if (engine_ == nullptr || engine_->cap() == nullptr)
        return r;
    Process &proc = process(ctx.pid());
    const unsigned slot = static_cast<unsigned>(ctx.reg(reg::a0));
    if (capRevoke(proc, slot))
        r.retval = 0;
    return r;
}

std::uint64_t
Kernel::onIommuFault(unsigned ctx, Addr iova, bool is_write)
{
    (void)is_write;
    if (engine_ == nullptr || engine_->iommu() == nullptr)
        return ~std::uint64_t(0);
    // Find the process owning the faulting register context.
    Process *owner = nullptr;
    for (auto &p : processes_) {
        const auto &grant = p->dmaGrant();
        if (grant.keyContext && *grant.keyContext == ctx) {
            owner = p.get();
            break;
        }
    }
    if (owner == nullptr || owner->finished())
        return ~std::uint64_t(0);
    // Repairable only if the page really is mapped in the process —
    // an IOVA outside the address space stays a hard fault.
    const Addr page = pageAlignDown(iova);
    if (!owner->pageTable().lookup(page).has_value())
        return ~std::uint64_t(0);
    // Map and pin the one faulting page; the engine resumes the
    // parked descriptor after the fault-handling cost.
    if (!iommuMapRange(*owner, page, pageSize, /*pin=*/true))
        return ~std::uint64_t(0);
    ++iommuFixups_;
    ULDMA_TRACE("Kernel", cpu_.clockEdge(), name_, ": iommu fix-up ctx ",
                ctx, " iova 0x", std::hex, iova);
    return cyclesToTicks(params_.faultHandlingCycles +
                         params_.translateCycles);
}

void
Kernel::onKernelDmaInterrupt()
{
    ++dmaInterrupts_;
    if (dmaWaiters_.empty())
        return;
    for (Process *waiter : dmaWaiters_) {
        if (waiter->state() == RunState::Blocked) {
            waiter->context().setState(RunState::Ready);
            scheduler_.enqueue(*waiter);
        }
    }
    dmaWaiters_.clear();

    // If the CPU idled waiting for this interrupt, dispatch now.  (A
    // busy CPU keeps running; the woken process competes at the next
    // scheduling point — we do not model preemptive interrupts.)
    if (cpu_.idle()) {
        doContextSwitch();
        cpu_.start();
    }
}

void
Kernel::onRingDmaInterrupt(unsigned ctx)
{
    ++ringInterrupts_;
    if (ringWaiters_.empty())
        return;
    // Wake sleepers on this ring only once it is fully drained —
    // sys::ringWait's contract is "ring idle", and a coalesced
    // interrupt can fire with transfers still outstanding.
    if (engine_ != nullptr && engine_->ringOutstanding(ctx) != 0)
        return;
    bool woke = false;
    std::vector<std::pair<Process *, unsigned>> keep;
    for (auto &[waiter, ring_ctx] : ringWaiters_) {
        if (ring_ctx == ctx && waiter->state() == RunState::Blocked) {
            waiter->context().setState(RunState::Ready);
            scheduler_.enqueue(*waiter);
            woke = true;
        } else {
            keep.emplace_back(waiter, ring_ctx);
        }
    }
    ringWaiters_ = std::move(keep);

    if (woke && cpu_.idle()) {
        doContextSwitch();
        cpu_.start();
    }
}

Tick
Kernel::handleFault(ExecContext &ctx, Fault fault, Addr vaddr)
{
    ++faults_;
    ULDMA_TRACE("Kernel", cpu_.clockEdge(), name_, ": pid ", ctx.pid(),
                " faulted (", static_cast<int>(fault), ") at vaddr 0x",
                std::hex, vaddr);
    (void)fault;
    (void)vaddr;
    // The process was already marked Faulted by the CPU; kill it and
    // move on.
    return cyclesToTicks(params_.faultHandlingCycles) + doContextSwitch();
}

Tick
Kernel::quantumExpired()
{
    if (current_ != nullptr &&
        current_->state() == RunState::Running) {
        current_->context().setState(RunState::Ready);
    }
    return doContextSwitch();
}

Tick
Kernel::yielded()
{
    if (current_ != nullptr &&
        current_->state() == RunState::Running) {
        current_->context().setState(RunState::Ready);
    }
    return doContextSwitch();
}

Tick
Kernel::exited()
{
    Tick cost = 0;
    if (current_ != nullptr) {
        current_->context().setState(RunState::Exited);
        cost += reapGrants(*current_);
    }
    return cost + doContextSwitch();
}

Tick
Kernel::reapGrants(Process &process)
{
    // Exit-time cleanup: return the register context / CONTEXT_ID to
    // the free pool so later processes can use user-level DMA.
    Tick cost = 0;
    if (process.dmaGrant().ringConfigured) {
        // The engine side is torn down by the ctxReset that
        // revokeKeyContext writes below; just drop the grant view.
        auto &grant = process.dmaGrant();
        grant.ringConfigured = false;
        grant.ringDescVaddr = 0;
        grant.ringCplVaddr = 0;
        grant.ringSlots = 0;
        grant.ringPolicy = 0;
        grant.ringCoalesce = 1;
        grant.ringEnqueueSeq = 0;
        grant.ringIommu = false;
    }
    if (process.dmaGrant().keyContext) {
        const Tick before = cpu_.clockEdge();
        revokeKeyContext(process);
        (void)before;
        // Two or three privileged register writes; charge a nominal
        // driver cost.
        cost += cyclesToTicks(60);
    }
    if (process.dmaGrant().shadowContext) {
        const unsigned ctx = *process.dmaGrant().shadowContext;
        if (ctx < shadowContextOwner_.size() &&
            shadowContextOwner_[ctx] == process.pid()) {
            shadowContextOwner_[ctx] = invalidPid;
        }
        process.dmaGrant().shadowContext.reset();
    }
    if (!process.dmaGrant().capSlots.empty()) {
        // Tear down every slot this process *owns* (delegated views of
        // other tenants' slots just drop the grant entry — the owner
        // keeps its capability).
        auto &grant = process.dmaGrant();
        for (unsigned slot : grant.capSlots) {
            if (slot >= capSlotOwner_.size() ||
                capSlotOwner_[slot] != process.pid()) {
                continue;
            }
            capSlotOwner_[slot] = invalidPid;
            if (engine_ != nullptr && engine_->cap() != nullptr) {
                const Addr base = engine_->params().kernelRegsBase;
                Packet sel = Packet::makeWrite(
                    base + kregs::capSlotSelect, slot);
                cpu_.kernelBusAccess(sel);
                Packet op = Packet::makeWrite(base + kregs::capOp,
                                              capop::invalidate);
                cpu_.kernelBusAccess(op);
                cost += cyclesToTicks(60);
            }
        }
        grant.capSlots.clear();
        grant.capPageVaddrs.clear();
        grant.capWords.clear();
        grant.capRateClasses.clear();
    }
    return cost;
}

Tick
Kernel::doContextSwitch()
{
    ULDMA_PROF_SCOPE("kernel.context_switch");
    ++switches_;
    ULDMA_TRACE_EVENT(name_, cpu_.clockEdge(), "context_switch", "n=",
                      switches_.value());
    Tick cost = cyclesToTicks(params_.contextSwitchCycles);

    // Hardware effects of leaving a process: pending writes drain,
    // the TLB is flushed.
    cost += cpu_.mergeBuffer().flushForContextSwitch();
    if (params_.flushTlbOnSwitch)
        cpu_.tlb().flush();

    Process *previous = current_;
    const SchedulingDecision decision = scheduler_.pickNext(previous);
    current_ = decision.next;

    // Kernel-modification hooks (the baselines' requirement).  These
    // run on *every* switch and their device writes are real cost —
    // the paper's argument against them.
    if (shrimp2Hook_ && engine_ != nullptr) {
        ++hookRuns_;
        Packet inv = Packet::makeWrite(
            engine_->params().kernelRegsBase + kregs::invalidate, 1);
        cost += cpu_.kernelBusAccess(inv);
    }
    if (flashHook_ && engine_ != nullptr) {
        ++hookRuns_;
        Packet tag = Packet::makeWrite(
            engine_->params().kernelRegsBase + kregs::osProcessTag,
            current_ != nullptr
                ? static_cast<std::uint64_t>(current_->pid())
                : 0);
        cost += cpu_.kernelBusAccess(tag);
    }

    if (current_ != nullptr) {
        cpu_.setCurrentContext(&current_->context());
        cpu_.setInstructionQuantum(decision.instructionQuantum);
        cpu_.setTimeQuantum(decision.timeQuantum != 0
                                ? cpu_.clockEdge() + decision.timeQuantum
                                : maxTick);
    } else {
        cpu_.setCurrentContext(nullptr);
    }

    ULDMA_TRACE("Sched", cpu_.clockEdge(), name_, ": switch ",
                previous != nullptr ? previous->name() : "<none>", " -> ",
                current_ != nullptr ? current_->name() : "<idle>");

    if (switchObserver_)
        switchObserver_(cpu_.clockEdge(), previous, current_);
    return cost;
}

} // namespace uldma
