/**
 * @file
 * The simulated UNIX-like operating system kernel.
 *
 * Two faces:
 *
 *  - *Runtime* (simulated, costed): syscall dispatch (including the
 *    traditional kernel-level DMA of figure 1), fault handling, and
 *    context switching with the cost model the paper's argument rests
 *    on (empty syscalls cost thousands of cycles [10]).
 *
 *  - *Setup* (host-side, uncosted): process creation, memory
 *    allocation, shadow-mapping construction, register-context + key
 *    granting, CONTEXT_ID assignment, mapped-out page registration.
 *    These correspond to mmap/initialization-time work the paper
 *    explicitly keeps off the critical path.
 *
 * "Kernel modification" is a first-class concept: the SHRIMP-2 and
 * FLASH baselines only work if their context-switch hook is installed
 * (installShrimp2Hook / installFlashHook).  The paper's own protocols
 * never install hooks — tests assert that the hook counters stay zero.
 */

#ifndef ULDMA_OS_KERNEL_HH
#define ULDMA_OS_KERNEL_HH

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cpu/cpu.hh"
#include "dma/dma_engine.hh"
#include "nic/atomic_unit.hh"
#include "nic/network_interface.hh"
#include "os/process.hh"
#include "os/scheduler.hh"
#include "os/syscalls.hh"

namespace uldma {

/**
 * Virtual address where the kernel maps the atomic-op shadow page for
 * operation @p op and physical address @p paddr: ops are separated by
 * a generous virtual stride so a process can address every
 * (op, target) combination.
 */
constexpr Addr
atomicShadowVirtualFor(AtomicOp op, Addr paddr)
{
    return atomicVirtualBase +
           (Addr(static_cast<unsigned>(op)) << 36) + paddr;
}

/** Kernel cost model and policy. */
struct KernelParams
{
    /**
     * Cycles of an empty system call (entry + exit).  Commercial
     * UNIX-likes of the era measured 1,000-5,000 cycles [10]; 2,300 at
     * 150 MHz reproduces the "slightly under 18.6 us" headroom of the
     * paper's kernel-DMA row.
     */
    Cycles syscallOverheadCycles = 2300;
    /** Cycles to switch contexts (register save/restore, runqueue). */
    Cycles contextSwitchCycles = 1200;
    /** Cycles for one software virtual_to_physical translation. */
    Cycles translateCycles = 60;
    /** Cycles per additional page of check_size() range checking. */
    Cycles perPageCheckCycles = 12;
    /** Cycles to take and triage a memory fault. */
    Cycles faultHandlingCycles = 500;
    /** Flush the TLB on context switch (process-tagged TLBs would
     *  not; the Alpha's PALcode flushes). */
    bool flushTlbOnSwitch = true;
};

/**
 * The operating-system kernel of one workstation.
 */
class Kernel : public OsCallbacks
{
  public:
    Kernel(std::string name, Cpu &cpu, Scheduler &scheduler,
           const KernelParams &params);

    const std::string &name() const { return name_; }
    const KernelParams &params() const { return params_; }
    Cpu &cpu() { return cpu_; }

    /// @name Device attachment (done by machine construction).
    /// @{
    void setDmaEngine(DmaEngine *engine);
    void setAtomicUnit(AtomicUnit *unit) { atomicUnit_ = unit; }
    void setNic(NetworkInterface *nic) { nic_ = nic; }
    DmaEngine *dmaEngine() { return engine_; }
    /// @}

    /// @name Process lifecycle (setup-time).
    /// @{
    Process &createProcess(std::string process_name);
    Process &process(Pid pid);
    const std::vector<std::unique_ptr<Process>> &processes() const
    {
        return processes_;
    }

    /** Install @p program and make the process runnable. */
    void launch(Process &process, Program program);

    /**
     * One-stop process spawn: create a process named @p process_name,
     * run @p setup against it (setup-time allocations, grants, program
     * construction — all uncosted), and launch the program it returns.
     * Used by the workload driver to stamp out stream workers.
     */
    Process &spawn(const std::string &process_name,
                   const std::function<Program(Process &)> &setup);

    /** Dispatch the first process and start the CPU. */
    void scheduleFirst();

    /** True when every created process has exited or faulted. */
    bool allFinished() const;
    /// @}

    /// @name Memory services (setup-time).
    /// @{
    /**
     * Allocate @p bytes of fresh, physically contiguous memory into
     * @p process's address space. @return the virtual address.
     */
    Addr allocate(Process &process, Addr bytes, Rights rights);

    /**
     * Map the physical memory behind (@p owner, @p owner_vaddr) into
     * @p other with @p rights (shared memory, e.g. the read-only
     * public page of the figure-6 attack). @return other's vaddr.
     */
    Addr mapShared(Process &owner, Addr owner_vaddr, Addr bytes,
                   Process &other, Rights rights);

    /**
     * Map @p bytes of remote node @p node's memory at physical
     * @p remote_paddr into @p process (write-through remote window).
     * @return the virtual address.
     */
    Addr mapRemoteWindow(Process &process, NodeId node, Addr remote_paddr,
                         Addr bytes, Rights rights);

    /** Kernel's own software translation (also used by SYS_dma). */
    Translation translateFor(Process &process, Addr vaddr,
                             Rights need) const;
    /// @}

    /// @name User-level DMA setup services (paper §2.3, §3.1, §3.2).
    /// @{
    /**
     * Create shadow mappings for [vaddr, vaddr+bytes) (paper §2.3).
     * The shadow virtual address of a byte equals
     * shadowVirtualBase + its physical address, so user code can
     * compute shadow(v) after a single query.  Rights mirror the
     * user mapping.  Uses the process's CONTEXT_ID if one is granted.
     */
    void createShadowMappings(Process &process, Addr vaddr, Addr bytes);

    /** shadow(vaddr) in @p process's address space. */
    Addr shadowVaddrFor(Process &process, Addr vaddr) const;

    /** Grant a key-based register context (paper §3.1). false = none
     *  free, the process must fall back to kernel DMA. */
    bool grantKeyContext(Process &process);

    /** Release a previously granted key context. */
    void revokeKeyContext(Process &process);

    /** Grant an extended-shadow CONTEXT_ID (paper §3.2). false = all
     *  (1 << ctxIdBits) ids are taken. */
    bool grantShadowContext(Process &process);

    /**
     * Register a mapped-out page (SHRIMP-1, paper §2.4): DMA from the
     * page behind @p vaddr always goes to physical @p target_paddr
     * (typically a remote window address).
     */
    void setupMapOut(Process &process, Addr vaddr, Addr target_paddr);

    /**
     * Create atomic-op shadow mappings for [vaddr, vaddr+bytes) and
     * operation @p op (paper §3.5).
     */
    void createAtomicShadowMappings(Process &process, Addr vaddr,
                                    Addr bytes, AtomicOp op);

    /** atomicShadow(op, vaddr) in @p process's address space. */
    Addr atomicShadowVaddrFor(Process &process, Addr vaddr,
                              AtomicOp op) const;

    /** Map the process's granted register-context page; returns the
     *  virtual address (also recorded in the grant). */
    Addr mapContextPage(Process &process);

    /**
     * Set up a descriptor ring for @p process (docs/RING.md): grant a
     * key context if none yet, allocate user-mapped descriptor and
     * completion-record regions, and program the engine's privileged
     * ring registers.  @p policy is ringdesc::policyPolling or
     * ringdesc::policyCoalesce; @p coalesce is the completions-per-
     * interrupt threshold (coalescing policy only).  false = no
     * register context free, fall back to per-transfer DMA.
     */
    bool setupRing(Process &process, unsigned slots, std::uint64_t policy,
                   unsigned coalesce = 1);

    /**
     * Authorize ring DMA to/from [vaddr, vaddr+bytes) of @p process:
     * translate page by page and program the engine's per-context
     * frame table.  Descriptors naming physical addresses outside the
     * authorized frames are rejected by the engine.
     */
    void authorizeRingDma(Process &process, Addr vaddr, Addr bytes);

    /// @name IOMMU services (docs/IOMMU.md; engine must have an IOMMU).
    /// @{
    /**
     * Map [vaddr, vaddr+bytes) of @p process into its I/O page table,
     * page by page, mirroring the rights of the user mapping; @p pin
     * requests map-time pins.  Programmed through the engine's
     * privileged kregs::iommu* registers.  @return false if any page
     * was unmapped in the process or a requested pin failed
     * (pin-budget exhaustion) — already-mapped pages stay mapped.
     */
    bool iommuMapRange(Process &process, Addr vaddr, Addr bytes,
                       bool pin);

    /** Remove [vaddr, vaddr+bytes) from @p process's I/O page table
     *  (stale IOTLB entries die via the generation tag). */
    void iommuUnmapRange(Process &process, Addr vaddr, Addr bytes);

    /** Pin already-iommu-mapped [vaddr, vaddr+bytes).  @return false
     *  when a page is unmapped or the pin budget is full. */
    bool iommuPinRange(Process &process, Addr vaddr, Addr bytes);
    /// @}

    /// @name Capability services (docs/CAPABILITIES.md; engine must
    /// have a capability table).  Also reachable at runtime through
    /// sys::capGrant / capDelegate / capRevoke.
    /// @{
    /**
     * Grant @p process a DMA capability over [vaddr, vaddr+bytes) with
     * QoS class @p rate_class: claim a free slot, program its frame
     * spans (one per physically contiguous run), arm it with a fresh
     * secret, and map the slot's presentation page.  The issued
     * capword lands in the process's DmaGrant.
     * @return the slot index, or -1 when no slot/spans are available.
     */
    int capGrant(Process &process, Addr vaddr, Addr bytes,
                 unsigned rate_class);

    /**
     * Widen @p owner's capability @p slot to also cover
     * [vaddr, vaddr+bytes): program additional frame spans (bounded by
     * CapParams::maxSpansPerSlot).  The capword is unchanged — spans
     * are slot state, not handle state.
     */
    bool capExtend(Process &owner, unsigned slot, Addr vaddr, Addr bytes);

    /**
     * Delegate @p owner's capability @p slot to @p target: map the
     * presentation page into the target and hand over the current
     * capword.  Pure kernel bookkeeping — the engine's table is
     * untouched, which is what makes revocation a generation bump.
     */
    bool capDelegate(Process &owner, unsigned slot, Process &target);

    /**
     * Revoke @p owner's capability @p slot: the engine bumps the
     * generation (outstanding capwords — delegated copies included —
     * fail closed, even mid-transfer) and the slot is re-armed with a
     * fresh secret for the owner alone.
     */
    bool capRevoke(Process &owner, unsigned slot);
    /// @}
    /// @}

    /**
     * Observe every context switch (model checker / tests): invoked
     * after the scheduling decision with the outgoing process (may be
     * nullptr or finished) and the incoming one (nullptr = idle).
     * Pure observation — installing one does not count as a kernel
     * modification in the paper's sense.
     */
    void
    setContextSwitchObserver(
        std::function<void(Tick, Process *previous, Process *next)> obs)
    {
        switchObserver_ = std::move(obs);
    }

    /// @name Kernel modifications (the baselines' requirement).
    /// @{
    /** SHRIMP-2: invalidate half-initiated user DMA on every switch. */
    void installShrimp2Hook() { shrimp2Hook_ = true; }
    /** FLASH: tell the engine who runs on every switch. */
    void installFlashHook() { flashHook_ = true; }
    bool kernelModified() const { return shrimp2Hook_ || flashHook_; }
    std::uint64_t hookInvocations() const { return hookRuns_.value(); }
    /// @}

    /// @name OsCallbacks (CPU upcalls).
    /// @{
    SyscallResult syscall(ExecContext &ctx, std::uint64_t number) override;
    Tick handleFault(ExecContext &ctx, Fault fault, Addr vaddr) override;
    Tick quantumExpired() override;
    Tick yielded() override;
    Tick exited() override;
    /// @}

    /// @name Stats.
    /// @{
    stats::Group &statsGroup() { return statsGroup_; }
    void registerStats(stats::Registry &r) { r.add(&statsGroup_); }
    std::uint64_t numContextSwitches() const { return switches_.value(); }
    std::uint64_t numSyscalls() const { return syscalls_.value(); }
    std::uint64_t numFaultedProcesses() const { return faults_.value(); }
    /// @}

    /** Allocate @p npages fresh physical frames. @return base paddr. */
    Addr allocFrames(Addr npages);

  private:
    /** Pick and dispatch the next process. @return switch cost. */
    Tick doContextSwitch();

    /** Return an exiting process's DMA grants to the free pools. */
    Tick reapGrants(Process &process);

    SyscallResult sysNoop();
    SyscallResult sysDma(ExecContext &ctx);
    SyscallResult sysDmaPoll(ExecContext &ctx);
    SyscallResult sysDmaWait(ExecContext &ctx);
    SyscallResult sysRingWait(ExecContext &ctx);
    SyscallResult sysAtomic(ExecContext &ctx);
    SyscallResult sysIommuMap(ExecContext &ctx);
    SyscallResult sysIommuUnmap(ExecContext &ctx);
    SyscallResult sysIommuPin(ExecContext &ctx);
    SyscallResult sysCapGrant(ExecContext &ctx);
    SyscallResult sysCapDelegate(ExecContext &ctx);
    SyscallResult sysCapRevoke(ExecContext &ctx);

    /**
     * IOMMU translation-fault fix-up (IommuFaultPolicy::Trap): the
     * engine parked a descriptor on @p iova of register context
     * @p ctx.  Map (and pin) the page from the owning process's page
     * table; @return the fix-up cost in ticks, or ~0 when the page is
     * genuinely unmapped in the process too (the descriptor aborts).
     */
    std::uint64_t onIommuFault(unsigned ctx, Addr iova, bool is_write);

    /** Completion interrupt from the engine's kernel channel. */
    void onKernelDmaInterrupt();

    /** Coalesced completion interrupt from a descriptor ring. */
    void onRingDmaInterrupt(unsigned ctx);

    Tick cyclesToTicks(Cycles c) const { return cpu_.cyclesToTicks(c); }

    std::string name_;
    Cpu &cpu_;
    Scheduler &scheduler_;
    KernelParams params_;

    DmaEngine *engine_ = nullptr;
    AtomicUnit *atomicUnit_ = nullptr;
    NetworkInterface *nic_ = nullptr;

    std::vector<std::unique_ptr<Process>> processes_;
    Process *current_ = nullptr;
    Pid nextPid_ = 1;

    /// Context-switch observer (see the setter).
    std::function<void(Tick, Process *, Process *)> switchObserver_;
    Addr nextFreeFrame_ = 16;   ///< first frames reserved for the kernel

    bool shrimp2Hook_ = false;
    bool flashHook_ = false;

    /** Processes blocked in sys::dmaWait. */
    std::vector<Process *> dmaWaiters_;

    /** Processes blocked in sys::ringWait, with the ring context each
     *  one is waiting on. */
    std::vector<std::pair<Process *, unsigned>> ringWaiters_;

    /** Register-context occupancy (key-based protocol). */
    std::vector<Pid> keyContextOwner_;
    /** CONTEXT_ID occupancy (extended shadow addressing). */
    std::vector<Pid> shadowContextOwner_;
    /** Capability-slot occupancy (owner pid; delegates never own). */
    std::vector<Pid> capSlotOwner_;

    Random keyRng_;

    stats::Group statsGroup_;
    stats::Scalar switches_;
    stats::Scalar syscalls_;
    stats::Scalar faults_;
    stats::Scalar hookRuns_;
    stats::Scalar dmaWaits_;
    stats::Scalar dmaInterrupts_;
    stats::Scalar ringWaits_;
    stats::Scalar ringInterrupts_;
    stats::Scalar iommuMaps_;
    stats::Scalar iommuFixups_;
    stats::Scalar capGrants_;
    stats::Scalar capDelegations_;
    stats::Scalar capRevocations_;
};

} // namespace uldma

#endif // ULDMA_OS_KERNEL_HH
