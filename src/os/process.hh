/**
 * @file
 * A user process: an ExecContext plus the OS bookkeeping around it —
 * its page table, its allocated memory regions, and the DMA resources
 * (shadow mappings, register context + key, CONTEXT_ID) the kernel has
 * granted it.
 */

#ifndef ULDMA_OS_PROCESS_HH
#define ULDMA_OS_PROCESS_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cpu/exec_context.hh"
#include "vm/page_table.hh"

namespace uldma {

/** DMA capabilities a process has been granted by the kernel. */
struct DmaGrant
{
    /** Key-based protocol (paper §3.1). */
    std::optional<unsigned> keyContext;   ///< register-context id
    std::uint64_t key = 0;                ///< the secret key
    Addr contextPageVaddr = 0;            ///< where the ctx page is mapped
    /** Atomic unit's register-context page (keyed §3.5 adaptation). */
    Addr atomicContextPageVaddr = 0;

    /** Extended shadow addressing (paper §3.2). */
    std::optional<unsigned> shadowContext;  ///< CONTEXT_ID

    /// @name Descriptor ring (docs/RING.md), set up by Kernel::setupRing.
    /// @{
    bool ringConfigured = false;
    Addr ringDescVaddr = 0;   ///< descriptor ring, user-mapped
    Addr ringCplVaddr = 0;    ///< completion records, user-mapped
    unsigned ringSlots = 0;
    std::uint64_t ringPolicy = 0;   ///< ringdesc::policy*
    unsigned ringCoalesce = 1;      ///< completions per interrupt
    /** Program-build-time enqueue cursor (emitRingBatch's slot
     *  allocator; not runtime state). */
    std::uint64_t ringEnqueueSeq = 0;
    /// @}

    /** IOMMU mode (docs/IOMMU.md): ring descriptors carry the user's
     *  virtual addresses instead of kernel-translated physical ones —
     *  the engine translates through its I/O page table.  Set by
     *  Kernel::setupRing when the engine has an IOMMU. */
    bool ringIommu = false;

    /// @name Capability-gated DMA (docs/CAPABILITIES.md), set up by
    /// Kernel::capGrant / capDelegate.  Parallel vectors, one entry per
    /// slot this process can present to.  A delegate's capword goes
    /// stale when the owner revokes — the kernel deliberately does not
    /// scrub it: presenting a stale handle fails closed in hardware,
    /// which is exactly the behaviour tests and the checker probe.
    /// @{
    std::vector<unsigned> capSlots;        ///< engine slot indices
    std::vector<Addr> capPageVaddrs;       ///< mapped presentation pages
    std::vector<std::uint64_t> capWords;   ///< capwords as last issued
    std::vector<unsigned> capRateClasses;  ///< QoS class per slot
    /// @}
};

/**
 * One simulated process.
 */
class Process
{
  public:
    Process(Pid pid, std::string name)
        : pageTable_(std::make_unique<PageTable>()),
          ctx_(pid, std::move(name), *pageTable_)
    {}

    Pid pid() const { return ctx_.pid(); }
    const std::string &name() const { return ctx_.name(); }

    ExecContext &context() { return ctx_; }
    const ExecContext &context() const { return ctx_; }

    PageTable &pageTable() { return *pageTable_; }

    RunState state() const { return ctx_.state(); }
    bool runnable() const
    {
        return ctx_.state() == RunState::Ready ||
               ctx_.state() == RunState::Running;
    }
    bool finished() const
    {
        return ctx_.state() == RunState::Exited ||
               ctx_.state() == RunState::Faulted;
    }

    DmaGrant &dmaGrant() { return grant_; }
    const DmaGrant &dmaGrant() const { return grant_; }

    /** Next unused virtual address for a fresh mapping. */
    Addr allocCursor() const { return allocCursor_; }
    void setAllocCursor(Addr a) { allocCursor_ = a; }

  private:
    std::unique_ptr<PageTable> pageTable_;
    ExecContext ctx_;
    DmaGrant grant_;
    Addr allocCursor_ = userRegionBase;
};

} // namespace uldma

#endif // ULDMA_OS_PROCESS_HH
