// process.hh is header-only today; this translation unit exists so the
// class gains a home for out-of-line definitions as it grows.
#include "os/process.hh"
