#include "util/random.hh"

#include <cassert>

namespace uldma {

namespace {

/** splitmix64 step, used only for seeding. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Random::reseed(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Random::next64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Random::below(std::uint64_t bound)
{
    assert(bound != 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t(0) - (~std::uint64_t(0) % bound);
    std::uint64_t v;
    do {
        v = next64();
    } while (v >= limit);
    return v % bound;
}

std::uint64_t
Random::inRange(std::uint64_t lo, std::uint64_t hi)
{
    assert(lo <= hi);
    if (lo == 0 && hi == ~std::uint64_t(0))
        return next64();
    return lo + below(hi - lo + 1);
}

double
Random::nextDouble()
{
    // 53 high bits → double in [0, 1).
    return (next64() >> 11) * (1.0 / 9007199254740992.0);
}

} // namespace uldma
