/**
 * @file
 * A tiny command-line option parser for the example programs and
 * benchmark drivers.  Supports --name=value and --name value forms,
 * boolean flags, and produces a usage string.
 */

#ifndef ULDMA_UTIL_OPTIONS_HH
#define ULDMA_UTIL_OPTIONS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace uldma {

/**
 * Declarative option set.  Register options with defaults, then parse
 * argv; unknown options are fatal, so typos do not silently run the
 * default experiment.
 */
class Options
{
  public:
    explicit Options(std::string program_description)
        : description_(std::move(program_description))
    {}

    /** Register a string-valued option. */
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);
    /** Register an integer-valued option. */
    void addInt(const std::string &name, std::int64_t def,
                const std::string &help);
    /** Register a boolean flag (presence or =true/=false). */
    void addFlag(const std::string &name, bool def, const std::string &help);

    /**
     * Parse the command line.
     * @return true to continue; false if --help was requested (usage has
     *         already been printed).
     */
    bool parse(int argc, char **argv);

    std::string getString(const std::string &name) const;
    std::int64_t getInt(const std::string &name) const;
    bool getFlag(const std::string &name) const;

    /** Positional (non-option) arguments in order. */
    const std::vector<std::string> &positional() const { return positional_; }

    /** Render the usage text. */
    std::string usage(const std::string &argv0) const;

  private:
    enum class Kind { String, Int, Flag };

    struct Entry
    {
        Kind kind;
        std::string value;
        std::string def;
        std::string help;
    };

    const Entry &lookup(const std::string &name, Kind kind) const;

    std::string description_;
    std::map<std::string, Entry> entries_;
    std::vector<std::string> order_;
    std::vector<std::string> positional_;
};

} // namespace uldma

#endif // ULDMA_UTIL_OPTIONS_HH
