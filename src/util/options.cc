#include "util/options.hh"

#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"
#include "util/strutil.hh"

namespace uldma {

void
Options::addString(const std::string &name, const std::string &def,
                   const std::string &help)
{
    entries_[name] = Entry{Kind::String, def, def, help};
    order_.push_back(name);
}

void
Options::addInt(const std::string &name, std::int64_t def,
                const std::string &help)
{
    const std::string s = std::to_string(def);
    entries_[name] = Entry{Kind::Int, s, s, help};
    order_.push_back(name);
}

void
Options::addFlag(const std::string &name, bool def, const std::string &help)
{
    const std::string s = def ? "true" : "false";
    entries_[name] = Entry{Kind::Flag, s, s, help};
    order_.push_back(name);
}

bool
Options::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage(argv[0]).c_str(), stdout);
            return false;
        }
        if (!startsWith(arg, "--")) {
            positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        std::string value;
        bool have_value = false;
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            have_value = true;
        }
        auto it = entries_.find(arg);
        if (it == entries_.end())
            ULDMA_FATAL("unknown option --", arg, "; try --help");
        Entry &entry = it->second;
        if (entry.kind == Kind::Flag) {
            entry.value = have_value ? value : "true";
            if (entry.value != "true" && entry.value != "false")
                ULDMA_FATAL("option --", arg, " expects true/false");
        } else {
            if (!have_value) {
                if (i + 1 >= argc)
                    ULDMA_FATAL("option --", arg, " needs a value");
                value = argv[++i];
            }
            entry.value = value;
        }
    }
    return true;
}

const Options::Entry &
Options::lookup(const std::string &name, Kind kind) const
{
    auto it = entries_.find(name);
    ULDMA_ASSERT(it != entries_.end(), "option ", name, " not registered");
    ULDMA_ASSERT(it->second.kind == kind, "option ", name,
                 " accessed with wrong type");
    return it->second;
}

std::string
Options::getString(const std::string &name) const
{
    return lookup(name, Kind::String).value;
}

std::int64_t
Options::getInt(const std::string &name) const
{
    const Entry &entry = lookup(name, Kind::Int);
    char *end = nullptr;
    const long long v = std::strtoll(entry.value.c_str(), &end, 0);
    if (end == nullptr || *end != '\0')
        ULDMA_FATAL("option --", name, " expects an integer, got '",
                    entry.value, "'");
    return v;
}

bool
Options::getFlag(const std::string &name) const
{
    return lookup(name, Kind::Flag).value == "true";
}

std::string
Options::usage(const std::string &argv0) const
{
    std::string out = description_ + "\n\nusage: " + argv0 + " [options]\n";
    for (const auto &name : order_) {
        const Entry &entry = entries_.at(name);
        out += csprintf("  --%-24s %s (default: %s)\n", name.c_str(),
                        entry.help.c_str(), entry.def.c_str());
    }
    return out;
}

} // namespace uldma
