/**
 * @file
 * Small string helpers used for reporting: printf-style formatting into
 * std::string, human-readable byte/time quantities, and splitting.
 */

#ifndef ULDMA_UTIL_STRUTIL_HH
#define ULDMA_UTIL_STRUTIL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace uldma {

/** printf into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** "4.0 KiB", "1.5 MiB", ... */
std::string formatBytes(std::uint64_t bytes);

/** Render picoseconds as the most natural unit: "18.60 us", "80 ns", ... */
std::string formatTime(std::uint64_t picoseconds);

/** Split @p s on @p sep, keeping empty fields. */
std::vector<std::string> split(const std::string &s, char sep);

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &s);

/** True if @p s begins with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

} // namespace uldma

#endif // ULDMA_UTIL_STRUTIL_HH
