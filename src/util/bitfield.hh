/**
 * @file
 * Bit-manipulation helpers in the style of gem5's base/bitfield.hh.
 *
 * These are used pervasively by the DMA engine to carve context ids and
 * keys out of shadow physical addresses and store payloads.
 */

#ifndef ULDMA_UTIL_BITFIELD_HH
#define ULDMA_UTIL_BITFIELD_HH

#include <cassert>
#include <cstdint>

namespace uldma {

/**
 * Generate a 64-bit mask of @p nbits ones in the low-order bits.
 * mask(64) is all ones; mask(0) is zero.
 */
constexpr std::uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~std::uint64_t(0)
                       : (std::uint64_t(1) << nbits) - 1;
}

/**
 * Extract the inclusive bit range [last:first] from @p val
 * (bit 0 is the least significant bit).
 */
constexpr std::uint64_t
bits(std::uint64_t val, unsigned last, unsigned first)
{
    return (val >> first) & mask(last - first + 1);
}

/** Extract the single bit @p bit from @p val. */
constexpr std::uint64_t
bits(std::uint64_t val, unsigned bit)
{
    return bits(val, bit, bit);
}

/**
 * Return @p val with the inclusive bit range [last:first] replaced by the
 * low-order bits of @p field.
 */
constexpr std::uint64_t
insertBits(std::uint64_t val, unsigned last, unsigned first,
           std::uint64_t field)
{
    const std::uint64_t m = mask(last - first + 1) << first;
    return (val & ~m) | ((field << first) & m);
}

/** True if @p val has exactly one bit set. */
constexpr bool
isPowerOf2(std::uint64_t val)
{
    return val != 0 && (val & (val - 1)) == 0;
}

/** Integer ceil(log2(val)); val must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t val)
{
    unsigned result = 0;
    std::uint64_t acc = 1;
    while (acc < val) {
        acc <<= 1;
        ++result;
    }
    return result;
}

/** Integer floor(log2(val)); val must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t val)
{
    unsigned result = 0;
    while (val >>= 1)
        ++result;
    return result;
}

/** Divide @p a by @p b, rounding up. @p b must be nonzero. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p val up to the next multiple of @p align (a power of two). */
constexpr std::uint64_t
roundUp(std::uint64_t val, std::uint64_t align)
{
    return (val + align - 1) & ~(align - 1);
}

/** Round @p val down to a multiple of @p align (a power of two). */
constexpr std::uint64_t
roundDown(std::uint64_t val, std::uint64_t align)
{
    return val & ~(align - 1);
}

} // namespace uldma

#endif // ULDMA_UTIL_BITFIELD_HH
