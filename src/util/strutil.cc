#include "util/strutil.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <vector>

namespace uldma {

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);

    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed));
        // C++11 guarantees contiguous storage; +1 for the NUL vsnprintf
        // writes is covered by writing into a buffer of needed+1.
        std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
        out.assign(buf.data(), static_cast<std::size_t>(needed));
    }
    va_end(args_copy);
    return out;
}

std::string
formatBytes(std::uint64_t bytes)
{
    static const char *units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double value = static_cast<double>(bytes);
    unsigned unit = 0;
    while (value >= 1024.0 && unit < 4) {
        value /= 1024.0;
        ++unit;
    }
    if (unit == 0)
        return csprintf("%llu B", static_cast<unsigned long long>(bytes));
    return csprintf("%.1f %s", value, units[unit]);
}

std::string
formatTime(std::uint64_t picoseconds)
{
    const double ps = static_cast<double>(picoseconds);
    if (picoseconds < 1000ULL)
        return csprintf("%llu ps",
                        static_cast<unsigned long long>(picoseconds));
    if (picoseconds < 1000'000ULL)
        return csprintf("%.2f ns", ps / 1e3);
    if (picoseconds < 1000'000'000ULL)
        return csprintf("%.2f us", ps / 1e6);
    if (picoseconds < 1000'000'000'000ULL)
        return csprintf("%.2f ms", ps / 1e9);
    return csprintf("%.3f s", ps / 1e12);
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = s.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            return out;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

} // namespace uldma
