#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace uldma {

namespace {

std::atomic<unsigned> warnCounter{0};

} // namespace

unsigned
warnCount()
{
    return warnCounter.load(std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")"
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " (" << file << ":" << line << ")"
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    warnCounter.fetch_add(1, std::memory_order_relaxed);
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace uldma
