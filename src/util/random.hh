/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * A xoshiro256** generator: fast, high quality, and — critically for a
 * simulator — fully deterministic given a seed, so every test and every
 * benchmark run is reproducible.  Also used to draw the ~60-bit DMA
 * protection keys of the key-based protocol (paper §3.1).
 */

#ifndef ULDMA_UTIL_RANDOM_HH
#define ULDMA_UTIL_RANDOM_HH

#include <cstdint>

namespace uldma {

/**
 * xoshiro256** PRNG (Blackman & Vigna).  Seeded via splitmix64 so that
 * even seed 0 yields a good state.
 */
class Random
{
  public:
    /** Construct with the given seed (default chosen arbitrarily). */
    explicit Random(std::uint64_t seed = 0x1997'0201'4841'0003ULL)
    {
        reseed(seed);
    }

    /** Re-initialize the state from @p seed. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in the inclusive range [lo, hi]. */
    std::uint64_t inRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p) { return nextDouble() < p; }

  private:
    std::uint64_t state_[4];
};

} // namespace uldma

#endif // ULDMA_UTIL_RANDOM_HH
