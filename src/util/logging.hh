/**
 * @file
 * Error-reporting and status-message helpers, modeled on gem5's
 * base/logging.hh.
 *
 * panic()  — an internal simulator invariant was violated (aborts).
 * fatal()  — the user supplied an impossible configuration (exits).
 * warn()   — something is modeled approximately but the run continues.
 * inform() — plain status output.
 */

#ifndef ULDMA_UTIL_LOGGING_HH
#define ULDMA_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace uldma {

namespace detail {

/** Concatenate any streamable arguments into a single string. */
template <typename... Args>
std::string
concatToString(Args &&...args)
{
    std::ostringstream os;
    ((os << std::forward<Args>(args)), ...);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Number of warn() calls so far; exposed so tests can assert on it. */
unsigned warnCount();

} // namespace uldma

/** Abort: a simulator bug (condition that should never happen). */
#define ULDMA_PANIC(...)                                                    \
    ::uldma::detail::panicImpl(__FILE__, __LINE__,                          \
        ::uldma::detail::concatToString(__VA_ARGS__))

/** Exit: an unusable user configuration. */
#define ULDMA_FATAL(...)                                                    \
    ::uldma::detail::fatalImpl(__FILE__, __LINE__,                          \
        ::uldma::detail::concatToString(__VA_ARGS__))

/** Warn but continue. */
#define ULDMA_WARN(...)                                                     \
    ::uldma::detail::warnImpl(::uldma::detail::concatToString(__VA_ARGS__))

/** Informational status message. */
#define ULDMA_INFORM(...)                                                   \
    ::uldma::detail::informImpl(                                            \
        ::uldma::detail::concatToString(__VA_ARGS__))

/** panic() unless @p cond holds. */
#define ULDMA_ASSERT(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ULDMA_PANIC("assertion '" #cond "' failed: ",                   \
                        ::uldma::detail::concatToString(__VA_ARGS__));      \
        }                                                                   \
    } while (0)

#endif // ULDMA_UTIL_LOGGING_HH
