/**
 * @file
 * Fundamental scalar types shared by every module of the simulator.
 */

#ifndef ULDMA_UTIL_TYPES_HH
#define ULDMA_UTIL_TYPES_HH

#include <cstdint>

namespace uldma {

/** Simulated time, measured in picoseconds since simulation start. */
using Tick = std::uint64_t;

/** A physical or virtual memory address inside the simulated machine. */
using Addr = std::uint64_t;

/** Count of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** Process identifier inside the simulated operating system. */
using Pid = std::int32_t;

/** Node identifier inside the simulated network of workstations. */
using NodeId = std::uint32_t;

/** Invalid/unassigned process id. */
inline constexpr Pid invalidPid = -1;

/** The largest representable tick; used as "never". */
inline constexpr Tick maxTick = ~Tick(0);

} // namespace uldma

#endif // ULDMA_UTIL_TYPES_HH
