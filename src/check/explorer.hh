/**
 * @file
 * Bounded-exhaustive interleaving exploration.
 *
 * The explorer enumerates every non-decreasing multiset of up to
 * `depth` preemption boundaries over the victim's initiation sequence
 * (repeats = back-to-back preemptions), re-executing the scenario
 * from scratch for each (stateless model checking).  State hashes
 * captured at each delivered preemption prune extensions of prefixes
 * whose machine state was already explored.  The first invariant
 * violation is greedily shrunk to a minimal counterexample.
 */

#ifndef ULDMA_CHECK_EXPLORER_HH
#define ULDMA_CHECK_EXPLORER_HH

#include <optional>

#include "check/runner.hh"

namespace uldma::check {

struct ExplorerConfig
{
    RunnerConfig runner;
    /** Maximum number of preemption points per schedule. */
    unsigned depth = 2;
    /** Prune extensions of state-equivalent prefixes. */
    bool prune = true;
    /** Safety valve on total re-executions (0 = unlimited). */
    std::uint64_t maxRuns = 0;
};

/** A shrunk violating schedule and what replaying it produces. */
struct Counterexample
{
    std::vector<std::uint64_t> preemptAfter;
    RunResult result;
};

struct ExploreReport
{
    std::uint64_t boundarySpace = 0;
    std::uint64_t runs = 0;       ///< schedules actually executed
    std::uint64_t pruned = 0;     ///< prefixes cut by state hashing
    bool exhausted = true;        ///< false if maxRuns stopped the search
    std::optional<Counterexample> counterexample;
};

/**
 * Explore @p config's schedule space, stopping at the first invariant
 * violation (shrunk before being reported).
 */
ExploreReport explore(const ExplorerConfig &config);

/**
 * Greedily remove preemption points from @p pts while the violation
 * persists; @p runs counts the extra executions spent shrinking.
 * @return the minimal (for single-point removal) violating schedule.
 */
std::vector<std::uint64_t> shrink(const RunnerConfig &config,
                                  std::vector<std::uint64_t> pts,
                                  std::uint64_t &runs);

} // namespace uldma::check

#endif // ULDMA_CHECK_EXPLORER_HH
