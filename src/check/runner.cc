#include "check/runner.hh"

#include <memory>

#include "cap/cap_params.hh"
#include "core/machine.hh"
#include "core/methods.hh"
#include "cpu/exec_context.hh"
#include "cpu/program.hh"
#include "os/scheduler.hh"
#include "sim/ticks.hh"
#include "util/logging.hh"
#include "vm/layout.hh"

namespace uldma::check {
namespace {

/// Victim transfer size (fits one page at both endpoints).
constexpr Addr payloadSize = 192;
/// Size the adversary's own (legitimate) transfers would carry.
constexpr Addr burstBytes = 48;
/// Byte pattern of the victim's source buffer.
constexpr std::uint8_t pattern = 0xD5;

/** 64-bit FNV-1a accumulator (matches DmaEngine::stateHash style). */
struct Fnv1a
{
    std::uint64_t h = 14695981039346656037ULL;

    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ULL;
        }
    }
};

/** Micro-ops of one adversary gap burst for @p method. */
std::uint64_t
burstLength(DmaMethod method, bool faults)
{
    if (!faults)
        return 1;   // one benign compute op per gap
    if (method == DmaMethod::Ring)
        return 6;   // malicious descriptor enqueue + arm + doorbell
    if (method == DmaMethod::Cap)
        return 6;   // hostile presentation: 3 arg stores + membar +
                    // capword commit + status load
    switch (engineModeFor(method)) {
      case EngineMode::ShadowPair: return 2;   // probe LOAD + dangling STORE
      case EngineMode::KeyBased: return 2;     // two forged-key STOREs
      default: return 3;                       // competing ST/LD/LD sequence
    }
}

void
mixExecContext(Fnv1a &f, ExecContext &ctx)
{
    f.mix(static_cast<std::uint64_t>(ctx.pc()));
    f.mix(static_cast<std::uint64_t>(ctx.state()));
    f.mix(ctx.instructionsRetired());
    for (int r = 0; r < numRegs; ++r)
        f.mix(ctx.reg(r));
}

} // namespace

RunResult
runSchedule(const RunnerConfig &config,
            const std::vector<std::uint64_t> &preemptAfter)
{
    const DmaMethod method = config.method;

    MachineConfig mconfig;
    // The checker builds thousands of machines per exploration; a
    // small DRAM keeps construction cheap (4 data pages are used).
    mconfig.node.memBytes = 2 * 1024 * 1024;
    configureNode(mconfig.node, method);
    mconfig.node.dma.weakRecognizer = config.weakRecognizer;
    mconfig.node.dma.weakRing = config.weakRing;

    // IOMMU mode (weakIommu implies it): descriptors carry virtual
    // addresses and the engine translates them.  A deliberately tiny
    // IOTLB keeps walks on the explored paths; aborting faults keep
    // every schedule finite.
    const bool iommuOn = config.useIommu || config.weakIommu;
    if (iommuOn) {
        mconfig.node.dma.iommu.enabled = true;
        mconfig.node.dma.iommu.iotlbEntries = 8;
        mconfig.node.dma.iommu.iotlbWays = 2;
        mconfig.node.dma.iommu.faultPolicy = IommuFaultPolicy::Abort;
        mconfig.node.dma.iommu.pinPolicy = PinPolicy::OnMap;
        mconfig.node.dma.weakIommu = config.weakIommu;
    }

    // Capability mode: configureNode already enabled the table; the
    // weakened engine starts presentations without consulting it.
    const bool capOn = method == DmaMethod::Cap;
    if (capOn)
        mconfig.node.dma.weakCap = config.weakCap;

    const std::uint64_t gap = burstLength(method, config.faults);
    PreemptionScheduler *sched = nullptr;
    mconfig.node.makeScheduler = [&]() {
        auto s = std::make_unique<PreemptionScheduler>(
            /*victim=*/1, /*intruder=*/2, preemptAfter, gap);
        sched = s.get();
        return s;
    };

    Machine machine(mconfig);
    prepareMachine(machine, method);
    Kernel &kernel = machine.node(0).kernel();
    DmaEngine &engine = machine.node(0).dmaEngine();
    PhysicalMemory &mem = machine.node(0).memory();

    Process &victim = kernel.createProcess("victim");
    Process &adversary = kernel.createProcess("adversary");
    ULDMA_ASSERT(prepareProcess(kernel, victim, method),
                 "victim grant failed for ", toString(method));
    ULDMA_ASSERT(prepareProcess(kernel, adversary, method),
                 "adversary grant failed for ", toString(method));

    // Buffers: one source and one destination page per process, all
    // shadow-mapped (the adversary legitimately owns DMA-able pages —
    // the question is whether it can abuse the victim's).
    const Addr vsrc = kernel.allocate(victim, pageSize, Rights::ReadWrite);
    const Addr vdst = kernel.allocate(victim, pageSize, Rights::ReadWrite);
    kernel.createShadowMappings(victim, vsrc, pageSize);
    kernel.createShadowMappings(victim, vdst, pageSize);
    const Addr asrc = kernel.allocate(adversary, pageSize, Rights::ReadWrite);
    const Addr adst = kernel.allocate(adversary, pageSize, Rights::ReadWrite);
    kernel.createShadowMappings(adversary, asrc, pageSize);
    kernel.createShadowMappings(adversary, adst, pageSize);
    if (method == DmaMethod::Ring && iommuOn) {
        // IOMMU mode: descriptors carry virtual addresses, so the I/O
        // page table (not the kernel frame table) confines them — map
        // each process's own buffers into its own context, pinned.
        kernel.iommuMapRange(victim, vsrc, pageSize, /*pin=*/true);
        kernel.iommuMapRange(victim, vdst, pageSize, /*pin=*/true);
        kernel.iommuMapRange(adversary, asrc, pageSize, /*pin=*/true);
        kernel.iommuMapRange(adversary, adst, pageSize, /*pin=*/true);
    } else if (method == DmaMethod::Ring) {
        // Ring descriptors name physical addresses, so the kernel's
        // frame table (not the MMU) is what confines them: authorize
        // each process's own buffers for its own ring.
        kernel.authorizeRingDma(victim, vsrc, pageSize);
        kernel.authorizeRingDma(victim, vdst, pageSize);
        kernel.authorizeRingDma(adversary, asrc, pageSize);
        kernel.authorizeRingDma(adversary, adst, pageSize);
    }

    // Capability scenario (docs/CAPABILITIES.md): three slots.
    //  - B: the victim grants a capability over its buffers, delegates
    //    it to the adversary, then revokes it — all at setup, so any
    //    use of the stale delegated word is a violation without a
    //    timing-dependent oracle (true mid-transfer revocation is unit
    //    tested via TransferEngine::cancel).
    //  - A: the victim's own working slot, granted after B so the
    //    victim's emitInitiation (which presents capSlots.back()) uses
    //    the healthy one.
    //  - C: the adversary's own legitimate slot over its own buffers —
    //    the valid word a span-escape attack presents while naming the
    //    victim's frames.
    int slotA = -1, slotB = -1, slotC = -1;
    std::uint64_t staleWordB = 0, validWordC = 0;
    if (capOn) {
        slotB = kernel.capGrant(victim, vsrc, pageSize, /*rate_class=*/1);
        ULDMA_ASSERT(slotB >= 0, "cap grant (slot B) failed");
        kernel.capExtend(victim, static_cast<unsigned>(slotB), vdst,
                         pageSize);
        ULDMA_ASSERT(kernel.capDelegate(victim,
                                        static_cast<unsigned>(slotB),
                                        adversary),
                     "cap delegation failed");
        ULDMA_ASSERT(kernel.capRevoke(victim,
                                      static_cast<unsigned>(slotB)),
                     "cap revocation failed");
        slotA = kernel.capGrant(victim, vsrc, pageSize, /*rate_class=*/0);
        ULDMA_ASSERT(slotA >= 0, "cap grant (slot A) failed");
        kernel.capExtend(victim, static_cast<unsigned>(slotA), vdst,
                         pageSize);
        slotC = kernel.capGrant(adversary, asrc, pageSize,
                                /*rate_class=*/2);
        ULDMA_ASSERT(slotC >= 0, "cap grant (slot C) failed");
        kernel.capExtend(adversary, static_cast<unsigned>(slotC), adst,
                         pageSize);

        // The adversary's grant view: the stale delegated word for B
        // (revocation left delegate copies untouched — that is the
        // race under test) and its own valid word for C.
        const DmaGrant &ag = adversary.dmaGrant();
        for (std::size_t i = 0; i < ag.capSlots.size(); ++i) {
            if (ag.capSlots[i] == static_cast<unsigned>(slotB))
                staleWordB = ag.capWords[i];
            if (ag.capSlots[i] == static_cast<unsigned>(slotC))
                validWordC = ag.capWords[i];
        }
        ULDMA_ASSERT(staleWordB != 0 && validWordC != 0,
                     "adversary capability words missing");
    }

    const Addr vsrc_p = kernel.translateFor(victim, vsrc, Rights::Read).paddr;
    const Addr vdst_p = kernel.translateFor(victim, vdst, Rights::Write).paddr;
    const Addr asrc_p =
        kernel.translateFor(adversary, asrc, Rights::Read).paddr;
    const Addr adst_p =
        kernel.translateFor(adversary, adst, Rights::Write).paddr;

    mem.fill(vsrc_p, pattern, payloadSize);
    mem.fill(vdst_p, 0x00, payloadSize);
    mem.fill(asrc_p, 0xA5, burstBytes);
    mem.fill(adst_p, 0x00, burstBytes);

    // Oracle inputs for the invariant audit.
    RunArtifacts art;
    art.method = method;
    art.victimPid = victim.pid();
    art.allowed.push_back({victim.pid(), vsrc_p, vdst_p, payloadSize});
    art.frames[victim.pid()] = {{vsrc_p, pageSize, true, true},
                                {vdst_p, pageSize, true, true}};
    art.frames[adversary.pid()] = {{asrc_p, pageSize, true, true},
                                   {adst_p, pageSize, true, true}};
    for (Process *p : {&victim, &adversary}) {
        const DmaGrant &g = p->dmaGrant();
        if (g.keyContext)
            art.ctxOwner[*g.keyContext] = p->pid();
        if (g.shadowContext)
            art.ctxOwner[*g.shadowContext] = p->pid();
        // Oracle copy of the kernel's ring frame table: what this
        // context's ring DMA is allowed to touch, page granular.
        if (g.ringConfigured && g.keyContext) {
            std::vector<FrameSpan> &spans = art.ringFrames[*g.keyContext];
            for (Addr region : {g.ringDescVaddr, g.ringCplVaddr}) {
                const Addr p_paddr = pageAlignDown(
                    kernel.translateFor(*p, region, Rights::Read).paddr);
                spans.push_back({p_paddr, pageSize, true, true});
            }
            const Addr own_src = p == &victim ? vsrc_p : asrc_p;
            const Addr own_dst = p == &victim ? vdst_p : adst_p;
            spans.push_back({pageAlignDown(own_src), pageSize, true, true});
            spans.push_back({pageAlignDown(own_dst), pageSize, true, true});
            // In IOMMU mode the same pages are what got mapped into
            // this context's I/O page table (setupRing mapped the ring
            // regions, iommuMapRange above mapped the buffers).
            if (iommuOn)
                art.iommuFrames[*g.keyContext] = spans;
        }
    }
    art.iommuEnabled = iommuOn;

    // Capability oracle: who owns each slot, which slots were revoked,
    // and the frame spans the kernel granted — independent copies of
    // the kernel's bookkeeping, never read by the engine.
    art.capEnabled = capOn;
    if (capOn) {
        const std::vector<FrameSpan> victim_spans = {
            {vsrc_p, pageSize, true, true}, {vdst_p, pageSize, true, true}};
        const std::vector<FrameSpan> adversary_spans = {
            {asrc_p, pageSize, true, true}, {adst_p, pageSize, true, true}};
        art.capSlotOwner[static_cast<unsigned>(slotA)] = victim.pid();
        art.capSlotOwner[static_cast<unsigned>(slotB)] = victim.pid();
        art.capSlotOwner[static_cast<unsigned>(slotC)] = adversary.pid();
        art.capSpans[static_cast<unsigned>(slotA)] = victim_spans;
        art.capSpans[static_cast<unsigned>(slotB)] = victim_spans;
        art.capSpans[static_cast<unsigned>(slotC)] = adversary_spans;
        // B's delegation was revoked, so no slot has a currently-valid
        // delegate: capDelegates stays empty and B joins capRevoked.
        art.capRevoked.push_back(static_cast<unsigned>(slotB));
    }

    // Victim: one DMA initiation, then capture the status register.
    std::uint64_t status = 0;
    Program vp;
    emitInitiation(vp, kernel, victim, method, vsrc, vdst, payloadSize);
    const std::uint64_t initiationOps = vp.size();
    vp.callback([&status](ExecContext &ctx) { status = ctx.reg(reg::v0); });
    vp.exit();

    for (std::uint64_t b : preemptAfter) {
        ULDMA_ASSERT(b <= initiationOps, "preemption boundary ", b,
                     " beyond initiation length ", initiationOps);
    }

    // Adversary: one burst per preemption gap.  With faults enabled
    // the burst is the nastiest protocol-specific shadow traffic the
    // process can legally issue; otherwise it is benign compute.
    Program ap;
    if (config.faults && method == DmaMethod::Ring) {
        // Ring attack: enqueue a descriptor into the adversary's OWN
        // ring that names the *victim's* source frame, arm it (ctrl
        // last) and ring the doorbell with the adversary's own valid
        // key.  The engine's per-context frame check must reject it;
        // with weakRing injected the theft goes through and the
        // ring-isolation invariant catches it.
        const DmaGrant &ag = adversary.dmaGrant();
        ULDMA_ASSERT(ag.ringConfigured && ag.keyContext.has_value(),
                     "ring adversary without a configured ring");
        const std::uint64_t payload =
            keyfield::pack(ag.key, *ag.keyContext);
        const Addr doorbell = ag.contextPageVaddr + ctxpage::ringDoorbell;
        for (std::size_t i = 0; i < preemptAfter.size(); ++i) {
            const Addr desc =
                ag.ringDescVaddr +
                Addr(i % ag.ringSlots) * ringdesc::descBytes;
            ap.store(desc + ringdesc::srcOff, vsrc_p);
            ap.withLabel("ring attack: desc.src = victim frame");
            ap.store(desc + ringdesc::dstOff, adst_p);
            ap.store(desc + ringdesc::sizeOff, burstBytes);
            ap.store(desc + ringdesc::ctrlOff, ringdesc::ctrl::valid);
            ap.membar();
            ap.store(doorbell, payload);
            ap.withLabel("ring attack: doorbell");
        }
    } else if (config.faults && method == DmaMethod::Cap) {
        // Capability attacks, one per gap, rotating three shapes: the
        // stale delegated word (revocation race), a forged secret on
        // the delegated page (forgery), and the adversary's own valid
        // word naming the victim's frame (span escape).  The sound
        // engine rejects all three at the commit; the weakened one
        // starts them and the cap-* invariants catch the transfers.
        const Addr pageB = capVirtualBase + Addr(slotB) * pageSize;
        const Addr pageC = capVirtualBase + Addr(slotC) * pageSize;
        const std::uint64_t forgedB = capfield::pack(
            static_cast<unsigned>(slotB), 0, 0xBADC0DEULL);
        for (std::size_t i = 0; i < preemptAfter.size(); ++i) {
            switch (i % 3) {
              case 0:
                emitCapPresentationRaw(ap, pageB, staleWordB, vsrc_p,
                                       vdst_p, burstBytes);
                break;
              case 1:
                emitCapPresentationRaw(ap, pageB, forgedB, vsrc_p,
                                       vdst_p, burstBytes);
                break;
              default:
                emitCapPresentationRaw(ap, pageC, validWordC, vsrc_p,
                                       adst_p, burstBytes);
                break;
            }
        }
    } else if (config.faults) {
        const Addr s_asrc = kernel.shadowVaddrFor(adversary, asrc);
        const Addr s_adst = kernel.shadowVaddrFor(adversary, adst);
        switch (engineModeFor(method)) {
          case EngineMode::ShadowPair:
            // The LOAD completes whatever is latched (the previous
            // burst's store → the adversary's own transfer, which is
            // declared as intended below); the STORE is left dangling
            // to tempt the victim's completing LOAD.
            for (std::size_t i = 0; i < preemptAfter.size(); ++i) {
                ap.load(reg::t0, s_asrc);
                ap.store(s_adst, burstBytes);
            }
            if (!preemptAfter.empty()) {
                art.allowed.push_back(
                    {adversary.pid(), asrc_p, adst_p, burstBytes});
            }
            break;
          case EngineMode::KeyBased: {
            // Forged key aimed at the *victim's* register context.
            ULDMA_ASSERT(victim.dmaGrant().keyContext.has_value(),
                         "key-based victim without a context");
            const std::uint64_t forged = keyfield::pack(
                0xBADC0DEULL, *victim.dmaGrant().keyContext);
            for (std::size_t i = 0; i < preemptAfter.size(); ++i) {
                ap.store(s_adst, forged);
                ap.store(s_asrc, forged);
            }
            break;
          }
          default:
            // Competing repeated-passing traffic at the adversary's
            // own addresses, shaped to hijack a half-done sequence if
            // the recognizer fails to reset.
            for (std::size_t i = 0; i < preemptAfter.size(); ++i) {
                ap.store(s_adst, burstBytes);
                ap.load(reg::t0, s_asrc);
                ap.load(reg::t1, s_adst);
            }
            break;
        }
    } else {
        for (std::size_t i = 0; i < preemptAfter.size(); ++i)
            ap.compute(1);
    }
    ap.exit();

    // Snapshot a state hash at each delivered preemption: engine
    // protocol state plus both execution contexts.  Equal hashes mean
    // equal futures, which is what the explorer's pruning relies on.
    RunResult result;
    result.boundarySpace = initiationOps + 1;
    machine.setContextSwitchObserver(
        0, [&](Tick, Process *, Process *next) {
            if (sched == nullptr || next == nullptr ||
                next->pid() != adversary.pid()) {
                return;
            }
            if (sched->preemptionsDelivered() <=
                result.boundaryHashes.size()) {
                return;   // drain-phase dispatch, not a preemption
            }
            Fnv1a f;
            f.mix(engine.stateHash());
            mixExecContext(f, victim.context());
            mixExecContext(f, adversary.context());
            result.boundaryHashes.push_back(f.h);
        });

    kernel.launch(victim, std::move(vp));
    kernel.launch(adversary, std::move(ap));
    machine.start();
    const bool finished = machine.run(tickPerSec / 100);

    art.initiations = engine.initiations();
    art.machineFinished = finished;
    art.victimFinished = victim.context().state() == RunState::Exited;
    art.victimStatus = status;
    art.payloadDelivered = true;
    for (Addr i = 0; i < payloadSize; ++i) {
        if (mem.readInt(vdst_p + i, 1) != pattern) {
            art.payloadDelivered = false;
            break;
        }
    }

    result.finished = finished;
    result.status = status;
    result.initiations = engine.numInitiations();
    result.finalHash = engine.stateHash();
    result.violations = checkInvariants(art);
    return result;
}

Outcome
outcomeOf(const RunResult &r)
{
    Outcome o;
    o.finished = r.finished;
    o.status = r.status;
    o.initiations = r.initiations;
    o.stateHash = r.finalHash;
    o.violations = r.violations;
    return o;
}

} // namespace uldma::check
