#include "check/invariants.hh"

#include <algorithm>
#include <sstream>

#include "dma/dma_params.hh"

namespace uldma::check {
namespace {

std::string
describeTransfer(const DmaEngine::InitiationRecord &rec)
{
    std::ostringstream os;
    os << std::hex << "0x" << rec.src << " -> 0x" << rec.dst << std::dec
       << " size " << rec.size << " ctx " << rec.ctx;
    return os.str();
}

bool
withinRights(const std::vector<FrameSpan> &spans, Addr base, Addr bytes,
             bool need_write)
{
    for (const FrameSpan &s : spans) {
        if (base >= s.base && base + bytes <= s.base + s.bytes)
            return need_write ? s.write : s.read;
    }
    return false;
}

} // namespace

std::vector<Violation>
checkInvariants(const RunArtifacts &a)
{
    std::vector<Violation> out;

    for (std::size_t i = 0; i < a.initiations.size(); ++i) {
        const DmaEngine::InitiationRecord &rec = a.initiations[i];
        if (rec.viaKernel)
            continue;   // kernel-channel transfers are the OS's business

        // initiation-atomicity: both arguments from the same process.
        const bool uniform =
            !rec.contributors.empty() &&
            std::all_of(rec.contributors.begin(), rec.contributors.end(),
                        [&](Pid p) { return p == rec.contributors.front(); });
        if (!uniform) {
            std::ostringstream d;
            d << "transfer #" << i << " (" << describeTransfer(rec)
              << ") mixed contributors:";
            for (Pid p : rec.contributors)
                d << " pid" << p;
            out.push_back({"initiation-atomicity", d.str()});
        }
        if (rec.contributors.empty())
            continue;   // nothing below is attributable
        const Pid initiator = rec.contributors.front();

        // protection: both endpoints inside the initiator's frames.
        auto frames_it = a.frames.find(initiator);
        const std::vector<FrameSpan> empty;
        const std::vector<FrameSpan> &spans =
            frames_it != a.frames.end() ? frames_it->second : empty;
        if (!withinRights(spans, rec.src, rec.size, /*need_write=*/false)) {
            std::ostringstream d;
            d << "transfer #" << i << " reads 0x" << std::hex << rec.src
              << std::dec << "+" << rec.size
              << " outside pid" << initiator << "'s readable frames";
            out.push_back({"protection", d.str()});
        }
        if (!withinRights(spans, rec.dst, rec.size, /*need_write=*/true)) {
            std::ostringstream d;
            d << "transfer #" << i << " writes 0x" << std::hex << rec.dst
              << std::dec << "+" << rec.size
              << " outside pid" << initiator << "'s writable frames";
            out.push_back({"protection", d.str()});
        }

        // intent-match: some process asked for exactly this transfer.
        const bool intended = std::any_of(
            a.allowed.begin(), a.allowed.end(),
            [&](const AllowedTransfer &t) {
                return t.pid == initiator && t.src == rec.src &&
                       t.dst == rec.dst && t.size == rec.size;
            });
        if (!intended) {
            out.push_back({"intent-match",
                           "transfer #" + std::to_string(i) + " (" +
                               describeTransfer(rec) +
                               ") matches no declared intent of pid" +
                               std::to_string(initiator)});
        }

        // ring-isolation: a descriptor-ring transfer stays inside the
        // frames the kernel authorized for its context, and the ring's
        // context belongs to the process that rang the doorbell.
        if (rec.viaRing) {
            if (a.iommuEnabled) {
                // iommu-isolation: the engine translated the descriptor's
                // virtual addresses, so the recorded physical endpoints
                // must lie inside the frames mapped (with matching
                // rights) into this context's I/O page table.  A weak
                // engine that bypasses a translation fault records the
                // raw untranslated address, which no table entry covers.
                auto io_it = a.iommuFrames.find(rec.ctx);
                const std::vector<FrameSpan> &io_spans =
                    io_it != a.iommuFrames.end() ? io_it->second : empty;
                if (!withinRights(io_spans, rec.src, rec.size,
                                  /*need_write=*/false) ||
                    !withinRights(io_spans, rec.dst, rec.size,
                                  /*need_write=*/true)) {
                    std::ostringstream d;
                    d << "ring transfer #" << i << " ("
                      << describeTransfer(rec)
                      << ") escapes ctx " << rec.ctx
                      << "'s I/O page table";
                    out.push_back({"iommu-isolation", d.str()});
                }
            } else {
                auto ring_it = a.ringFrames.find(rec.ctx);
                const std::vector<FrameSpan> &ring_spans =
                    ring_it != a.ringFrames.end() ? ring_it->second : empty;
                if (!withinRights(ring_spans, rec.src, rec.size,
                                  /*need_write=*/false) ||
                    !withinRights(ring_spans, rec.dst, rec.size,
                                  /*need_write=*/true)) {
                    std::ostringstream d;
                    d << "ring transfer #" << i << " ("
                      << describeTransfer(rec)
                      << ") escapes ctx " << rec.ctx
                      << "'s authorized ring frames";
                    out.push_back({"ring-isolation", d.str()});
                }
            }
            auto ring_owner = a.ctxOwner.find(rec.ctx);
            if (ring_owner != a.ctxOwner.end() &&
                initiator != ring_owner->second) {
                std::ostringstream d;
                d << "ring transfer #" << i << " enqueued by pid"
                  << initiator << " into ctx " << rec.ctx
                  << "'s ring (owner pid" << ring_owner->second << ")";
                out.push_back({"ring-isolation", d.str()});
            }
        }

        // Capability invariants (docs/CAPABILITIES.md), keyed on the
        // engine's viaCap record: only the slot's owner or a
        // currently-valid delegate may initiate through it, a revoked
        // slot works for nobody but the re-armed owner, and both
        // endpoints stay inside the slot's granted frame spans.
        if (rec.viaCap && a.capEnabled) {
            auto cap_owner = a.capSlotOwner.find(rec.capSlot);
            const bool is_owner = cap_owner != a.capSlotOwner.end() &&
                                  initiator == cap_owner->second;
            auto dl_it = a.capDelegates.find(rec.capSlot);
            const bool is_delegate =
                dl_it != a.capDelegates.end() &&
                std::find(dl_it->second.begin(), dl_it->second.end(),
                          initiator) != dl_it->second.end();
            if (!is_owner && !is_delegate) {
                std::ostringstream d;
                d << "cap transfer #" << i << " (" << describeTransfer(rec)
                  << ") through slot " << rec.capSlot
                  << " initiated by pid" << initiator
                  << ", which was never issued that capability";
                if (cap_owner != a.capSlotOwner.end())
                    d << " (owner pid" << cap_owner->second << ")";
                out.push_back({"cap-forgery", d.str()});
            }
            const bool revoked =
                std::find(a.capRevoked.begin(), a.capRevoked.end(),
                          rec.capSlot) != a.capRevoked.end();
            if (revoked && !is_owner) {
                std::ostringstream d;
                d << "cap transfer #" << i << " went through revoked slot "
                  << rec.capSlot << " on behalf of ex-delegate pid"
                  << initiator;
                out.push_back({"cap-revocation", d.str()});
            }
            auto span_it = a.capSpans.find(rec.capSlot);
            const std::vector<FrameSpan> &cap_spans =
                span_it != a.capSpans.end() ? span_it->second : empty;
            if (!withinRights(cap_spans, rec.src, rec.size,
                              /*need_write=*/false) ||
                !withinRights(cap_spans, rec.dst, rec.size,
                              /*need_write=*/true)) {
                std::ostringstream d;
                d << "cap transfer #" << i << " (" << describeTransfer(rec)
                  << ") escapes slot " << rec.capSlot
                  << "'s granted frame spans";
                out.push_back({"cap-isolation", d.str()});
            }
        }

        // key-secrecy: a granted context only ever works for its owner.
        auto owner_it = a.ctxOwner.find(rec.ctx);
        if (owner_it != a.ctxOwner.end()) {
            for (Pid p : rec.contributors) {
                if (p != owner_it->second) {
                    std::ostringstream d;
                    d << "transfer #" << i << " went through ctx "
                      << rec.ctx << " (owner pid" << owner_it->second
                      << ") with a contribution from pid" << p;
                    out.push_back({"key-secrecy", d.str()});
                    break;
                }
            }
        }
    }

    // status-honesty: success means the victim's transfer really
    // happened and the payload arrived.
    if (a.victimFinished && a.victimStatus != dmastatus::failure) {
        const bool victim_started = std::any_of(
            a.initiations.begin(), a.initiations.end(),
            [&](const DmaEngine::InitiationRecord &rec) {
                return !rec.contributors.empty() &&
                       rec.contributors.front() == a.victimPid &&
                       std::any_of(a.allowed.begin(), a.allowed.end(),
                                   [&](const AllowedTransfer &t) {
                                       return t.pid == a.victimPid &&
                                              t.src == rec.src &&
                                              t.dst == rec.dst &&
                                              t.size == rec.size;
                                   });
            });
        if (!victim_started) {
            out.push_back({"status-honesty",
                           "victim saw success but its transfer never "
                           "started"});
        } else if (!a.payloadDelivered) {
            out.push_back({"status-honesty",
                           "victim saw success but the destination buffer "
                           "does not hold the source pattern"});
        }
    }

    if (!a.machineFinished)
        out.push_back({"no-progress", "a process failed to finish"});

    return out;
}

} // namespace uldma::check
