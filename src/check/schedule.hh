/**
 * @file
 * Replayable schedule files (schema "uldma-schedule-v1").
 *
 * A schedule is the complete recipe for one deterministic run of the
 * model checker's two-process scenario: which protocol, whether the
 * adversary injects shadow traffic, whether the recognizer is
 * weakened, and the exact victim-instruction boundaries at which the
 * scheduler preempts.  Together with the recorded outcome it is a
 * self-contained counterexample (or witness) that
 * `uldma_check --replay` re-executes byte-identically.
 */

#ifndef ULDMA_CHECK_SCHEDULE_HH
#define ULDMA_CHECK_SCHEDULE_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "check/invariants.hh"
#include "core/methods.hh"

namespace uldma::check {

inline constexpr char scheduleSchema[] = "uldma-schedule-v1";

/** CLI tokens of the checked protocols: the four paper protocols in
 *  paper order, plus the descriptor-ring extension (docs/RING.md) and
 *  the capability family (docs/CAPABILITIES.md). */
inline constexpr const char *checkedProtocols[] = {
    "pal", "key-based", "ext-shadow", "repeated", "ring", "cap",
};

/** Map a protocol token to its DmaMethod (nullopt = unknown token). */
std::optional<DmaMethod> protocolMethod(const std::string &token);

/** Inverse of protocolMethod for the checked methods. */
const char *protocolToken(DmaMethod method);

/** One deterministic run of the checker scenario. */
struct Schedule
{
    std::string protocol;           ///< one of checkedProtocols
    bool faults = false;            ///< adversary shadow traffic in gaps
    bool weakRecognizer = false;    ///< test-only fault injection
    /** Test-only fault injection: disable the engine's ring frame
     *  check (absent in old schedule files, parsed as false). */
    bool weakRing = false;
    /** Ring descriptors carry virtual addresses translated by the
     *  engine's IOMMU (absent in old schedule files, parsed as
     *  false; docs/IOMMU.md). */
    bool iommu = false;
    /** Test-only fault injection: the engine uses the raw untranslated
     *  address on an IOMMU fault (absent in old files, parsed as
     *  false; implies iommu). */
    bool weakIommu = false;
    /** Test-only fault injection: capability presentations start
     *  without consulting the table (absent in old files, parsed as
     *  false; only meaningful with protocol "cap";
     *  docs/CAPABILITIES.md). */
    bool weakCap = false;
    /** Number of distinct preemption positions (0..initiation length). */
    std::uint64_t boundarySpace = 0;
    /** Non-decreasing absolute victim instruction counts; a repeated
     *  value preempts twice at the same boundary. */
    std::vector<std::uint64_t> preemptAfter;
};

/** What a run of a Schedule produced. */
struct Outcome
{
    bool finished = false;          ///< every process ran to completion
    std::uint64_t status = 0;       ///< victim's final reg::v0
    std::uint64_t initiations = 0;  ///< transfers the engine started
    std::uint64_t stateHash = 0;    ///< engine stateHash() after the run
    std::vector<Violation> violations;

    bool
    operator==(const Outcome &o) const
    {
        return finished == o.finished && status == o.status &&
               initiations == o.initiations && stateHash == o.stateHash &&
               violations == o.violations;
    }
};

/** "0x..." rendering used for 64-bit fields (JSON numbers are doubles
 *  and cannot carry 64 bits losslessly). */
std::string toHex(std::uint64_t v);
bool parseHex(const std::string &s, std::uint64_t &v);

/** Serialise schedule + outcome as one uldma-schedule-v1 document.
 *  Deterministic: the same inputs always produce the same bytes. */
void writeScheduleJson(std::ostream &os, const Schedule &schedule,
                       const Outcome &outcome);

/**
 * Parse an uldma-schedule-v1 document.
 * @return false (with @p error set) on malformed input.
 */
bool parseScheduleJson(const std::string &text, Schedule &schedule,
                       Outcome &outcome, std::string *error);

} // namespace uldma::check

#endif // ULDMA_CHECK_SCHEDULE_HH
