/**
 * @file
 * The protection-invariant catalog of the model checker.
 *
 * Every explored schedule is audited against the paper's safety
 * claims, expressed as predicates over what one run actually did (the
 * engine's initiation records plus the buffers and grants the runner
 * set up).  See docs/CHECKING.md for the invariant catalog in prose.
 */

#ifndef ULDMA_CHECK_INVARIANTS_HH
#define ULDMA_CHECK_INVARIANTS_HH

#include <map>
#include <string>
#include <vector>

#include "core/methods.hh"
#include "dma/dma_engine.hh"

namespace uldma::check {

/** One invariant violation found by the audit. */
struct Violation
{
    std::string invariant;   ///< catalog name, e.g. "initiation-atomicity"
    std::string detail;      ///< deterministic human-readable evidence

    bool
    operator==(const Violation &o) const
    {
        return invariant == o.invariant && detail == o.detail;
    }
};

/** A transfer some process legitimately asked for. */
struct AllowedTransfer
{
    Pid pid;
    Addr src;
    Addr dst;
    Addr size;
};

/** One physical range a process has rights to. */
struct FrameSpan
{
    Addr base;
    Addr bytes;
    bool read;
    bool write;
};

/**
 * Everything the invariant checker needs to audit one run.  Filled by
 * the runner from oracle state (initiation records, grants, page
 * frames) that no protocol decision ever reads.
 */
struct RunArtifacts
{
    DmaMethod method = DmaMethod::Repeated5;

    /// Every DMA the engine started, in order.
    std::vector<DmaEngine::InitiationRecord> initiations;

    /// Transfers that were legitimately requested by some process.
    std::vector<AllowedTransfer> allowed;

    /// Physical frames each process has mapped, with rights.
    std::map<Pid, std::vector<FrameSpan>> frames;

    /// Granted context id -> owning process (key or shadow contexts).
    std::map<unsigned, Pid> ctxOwner;

    /// Ring context id -> physical frame spans the kernel authorized
    /// for ring DMA (Kernel::authorizeRingDma), page granular.
    std::map<unsigned, std::vector<FrameSpan>> ringFrames;

    /// Ring descriptors carry virtual addresses translated through the
    /// engine's IOMMU (docs/IOMMU.md); audit with "iommu-isolation".
    bool iommuEnabled = false;

    /// IOMMU context id -> physical frame spans mapped into that
    /// context's I/O page table (Kernel::iommuMapRange), page granular.
    std::map<unsigned, std::vector<FrameSpan>> iommuFrames;

    /// Capability-gated initiation was enabled (docs/CAPABILITIES.md);
    /// audit viaCap records with the cap-* invariants below.
    bool capEnabled = false;

    /// Capability slot -> the process the kernel granted it to.
    std::map<unsigned, Pid> capSlotOwner;

    /// Capability slot -> processes holding a currently-valid (not
    /// revoked) delegation of that slot.
    std::map<unsigned, std::vector<Pid>> capDelegates;

    /// Slots whose capability was revoked before the run's transfers:
    /// ex-delegates keep their stale capwords, which must fail closed.
    std::vector<unsigned> capRevoked;

    /// Capability slot -> physical frame spans the kernel granted it
    /// (oracle copy of the engine's table spans).
    std::map<unsigned, std::vector<FrameSpan>> capSpans;

    Pid victimPid = 1;
    bool machineFinished = false;
    bool victimFinished = false;
    std::uint64_t victimStatus = 0;
    /// The victim's destination buffer holds the full source pattern.
    bool payloadDelivered = false;
};

/**
 * Audit one run.  Returns every violated invariant (empty = clean):
 *
 *  - "initiation-atomicity": a transfer started with argument
 *    contributions from more than one process (paper §2.1);
 *  - "protection": a transfer touches physical memory outside the
 *    initiating process's mapped frames;
 *  - "intent-match": a transfer started that no process asked for
 *    (wrong source, destination or size);
 *  - "key-secrecy": a transfer went through a granted context on
 *    behalf of a process that does not own it (paper §3.1/§3.2);
 *  - "status-honesty": the victim saw a success status although its
 *    transfer never started or the payload never arrived;
 *  - "ring-isolation": a descriptor-ring transfer touched physical
 *    memory outside the frames the kernel authorized for that ring's
 *    context, or went through a ring whose context the enqueuing
 *    process does not own (docs/RING.md) — a process must never
 *    enqueue into, arm, or observe completions from another context's
 *    ring;
 *  - "iommu-isolation": with the IOMMU enabled, a ring transfer's
 *    physical endpoints lie outside the frames mapped into its
 *    context's I/O page table (docs/IOMMU.md) — a translation fault
 *    must abort or trap, never let the device touch unmapped memory;
 *  - "cap-forgery": a capability-gated transfer was started by a
 *    process that is neither the slot's owner nor a currently-valid
 *    delegate — a presentation whose capword the kernel never issued
 *    to that process went through (docs/CAPABILITIES.md);
 *  - "cap-revocation": a transfer went through a revoked capability
 *    slot on behalf of an ex-delegate — the stale capword must fail
 *    closed from the instant of the generation bump;
 *  - "cap-isolation": a capability-gated transfer's endpoints lie
 *    outside the frame spans the kernel granted to its slot;
 *  - "no-progress": the machine failed to run every process to
 *    completion.
 */
std::vector<Violation> checkInvariants(const RunArtifacts &a);

} // namespace uldma::check

#endif // ULDMA_CHECK_INVARIANTS_HH
