/**
 * @file
 * Deterministic single-schedule execution for the model checker.
 *
 * Every run builds a fresh two-process Machine (a victim issuing one
 * DMA initiation, an adversary that runs in the preemption gaps),
 * drives it with a PreemptionScheduler following an explicit list of
 * victim-instruction boundaries, snapshots a state hash at each
 * delivered preemption (for prefix pruning), and audits the outcome
 * against the invariant catalog.  Stateless exploration: re-executing
 * the same schedule always reproduces the same hashes, status and
 * violations.
 */

#ifndef ULDMA_CHECK_RUNNER_HH
#define ULDMA_CHECK_RUNNER_HH

#include <cstdint>
#include <vector>

#include "check/invariants.hh"
#include "check/schedule.hh"

namespace uldma::check {

/** Scenario knobs shared by every run of one exploration. */
struct RunnerConfig
{
    DmaMethod method = DmaMethod::Repeated5;
    /** Adversary issues protocol-specific shadow traffic in each gap
     *  (forged keys, dangling stores, competing sequences) instead of
     *  benign compute. */
    bool faults = false;
    /** Engine fault injection: weakened §3.3 recognizer. */
    bool weakRecognizer = false;
    /** Engine fault injection: ring frame check disabled. */
    bool weakRing = false;
    /** Route ring descriptors through the IOMMU: descriptors carry
     *  virtual addresses, the engine translates via its I/O page table
     *  (docs/IOMMU.md). */
    bool useIommu = false;
    /** Engine fault injection: on a translation fault the engine uses
     *  the raw untranslated address instead of aborting (implies
     *  useIommu). */
    bool weakIommu = false;
    /** Engine fault injection: capability presentations start without
     *  consulting the table — forged secrets, revoked generations and
     *  span escapes all go through (docs/CAPABILITIES.md; requires
     *  method == DmaMethod::Cap). */
    bool weakCap = false;
};

/** Everything one run produced. */
struct RunResult
{
    /** Number of distinct preemption positions: one per boundary in
     *  [0, initiation-sequence length]. */
    std::uint64_t boundarySpace = 0;
    bool finished = false;
    std::uint64_t status = 0;
    std::uint64_t initiations = 0;
    /** Machine state hash captured at each delivered preemption. */
    std::vector<std::uint64_t> boundaryHashes;
    /** Engine state hash after the run. */
    std::uint64_t finalHash = 0;
    std::vector<Violation> violations;
};

/**
 * Execute the scenario under @p preemptAfter (non-decreasing absolute
 * victim instruction counts, each < boundarySpace).
 */
RunResult runSchedule(const RunnerConfig &config,
                      const std::vector<std::uint64_t> &preemptAfter);

/** Condense a RunResult into a serialisable Outcome. */
Outcome outcomeOf(const RunResult &r);

} // namespace uldma::check

#endif // ULDMA_CHECK_RUNNER_HH
