/**
 * @file
 * Coverage-guided randomized schedule fuzzing (docs/FUZZING.md).
 *
 * The bounded-exhaustive explorer (explorer.hh) proves small depths;
 * the fuzzer trades proof for reach.  A seeded mutator
 * (insert/remove/shift/duplicate/splice over preemption boundaries)
 * evolves a corpus of schedules; a schedule earns a place in the
 * corpus when its run touches a coverage edge no earlier run touched.
 * Edges are hashes over the machine state the runner already
 * captures: `DmaEngine::stateHash` at every delivered preemption
 * (position-salted), the final engine hash, and a per-invariant
 * signature for every violation — so "new coverage" means "the
 * protocol state machine was driven somewhere new", not "new random
 * bytes".
 *
 * Swarm mode re-draws the whole scenario configuration (protocol and
 * `--weaken-*` fault flags) every batch, so one soak exercises the
 * protocol mix instead of one hand-picked config.  Findings are
 * deduplicated per (config, invariant set), minimised with the
 * explorer's greedy shrinker, and re-run so the recorded outcome is
 * exactly what `uldma_check --replay` of the emitted
 * uldma-schedule-v1 repro will see.  Everything is deterministic in
 * the seed: the same FuzzConfig always yields byte-identical
 * uldma-fuzz-v1 reports.
 */

#ifndef ULDMA_CHECK_FUZZER_HH
#define ULDMA_CHECK_FUZZER_HH

#include <iosfwd>
#include <optional>

#include "check/explorer.hh"
#include "check/runner.hh"
#include "check/schedule.hh"

namespace uldma::check {

inline constexpr char fuzzSchema[] = "uldma-fuzz-v1";

struct FuzzConfig
{
    /** Scenario under test; ignored (re-drawn per batch) in swarm
     *  mode. */
    RunnerConfig runner;
    /** Re-draw protocol + fault flags every batch. */
    bool swarm = false;
    /** PRNG seed: same seed, same config — same report bytes. */
    std::uint64_t seed = 0;
    /** Total schedule executions (mutation budget; shrinking is
     *  accounted separately and not bounded by this). */
    std::uint64_t budgetSchedules = 2000;
    /** Cap on preemption points per mutated schedule. */
    unsigned maxPoints = 8;
    /** Schedules run against one config before swarm re-draws. */
    unsigned batchSchedules = 64;
    /** Greedily minimise findings with the explorer's shrinker. */
    bool shrinkFindings = true;
};

/** One deduplicated (config, invariant-set) violation, shrunk and
 *  re-run so the outcome replays byte-identically. */
struct FuzzFinding
{
    RunnerConfig config;
    std::uint64_t boundarySpace = 0;
    /** Minimal violating schedule (post-shrink). */
    std::vector<std::uint64_t> preemptAfter;
    /** Outcome of re-running the shrunk schedule. */
    Outcome outcome;
    /** 1-based exec index of the discovering run. */
    std::uint64_t foundAtExec = 0;
    /** Extra executions spent shrinking + re-running. */
    std::uint64_t shrinkExecs = 0;
    /** True when the config carries a fault-injection flag — the
     *  fuzzer proving its teeth, not a real bug. */
    bool expected = false;
};

/** Coverage-curve sample (taken at power-of-two exec counts and at
 *  the end of the run). */
struct CoveragePoint
{
    std::uint64_t execs = 0;
    std::uint64_t edges = 0;
    std::uint64_t corpus = 0;
};

/** Per-config accounting (one row per distinct config executed). */
struct FuzzConfigStats
{
    RunnerConfig config;
    std::uint64_t boundarySpace = 0;
    std::uint64_t execs = 0;
    std::uint64_t newEdges = 0;
    std::uint64_t corpus = 0;
    std::uint64_t findings = 0;
};

struct FuzzReport
{
    FuzzConfig config;
    std::uint64_t execs = 0;        ///< budget-counted schedule runs
    std::uint64_t shrinkExecs = 0;  ///< extra runs spent minimising
    std::uint64_t coverageEdges = 0;
    std::uint64_t corpusSize = 0;
    std::uint64_t expectedFindings = 0;
    std::uint64_t unexpectedFindings = 0;
    std::vector<CoveragePoint> curve;
    std::vector<FuzzConfigStats> configs;
    std::vector<FuzzFinding> findings;
};

/** Run the fuzzing loop to budget exhaustion. Deterministic. */
FuzzReport fuzz(const FuzzConfig &config);

/** Convert a finding into a repro Schedule `--replay` accepts. */
Schedule findingSchedule(const FuzzFinding &finding);

/** True when @p config carries any fault-injection flag. */
bool configWeakened(const RunnerConfig &config);

/**
 * Serialise a report as one uldma-fuzz-v1 document (deterministic:
 * same report, same bytes).  @p wallNs / @p execsPerSec are host-time
 * measurements; both are omitted unless provided (the byte-identity
 * contract covers only simulated fields, so callers opt in via
 * `--fuzz-host-time`).
 */
void writeFuzzJson(std::ostream &os, const FuzzReport &report,
                   std::optional<std::uint64_t> wallNs = std::nullopt,
                   std::optional<double> execsPerSec = std::nullopt);

} // namespace uldma::check

#endif // ULDMA_CHECK_FUZZER_HH
