#include "check/schedule.hh"

#include <ostream>
#include <sstream>

#include "sim/json.hh"

namespace uldma::check {

std::optional<DmaMethod>
protocolMethod(const std::string &token)
{
    if (token == "pal")
        return DmaMethod::PalCode;
    if (token == "key-based")
        return DmaMethod::KeyBased;
    if (token == "ext-shadow")
        return DmaMethod::ExtShadow;
    if (token == "repeated")
        return DmaMethod::Repeated5;
    if (token == "ring")
        return DmaMethod::Ring;
    if (token == "cap")
        return DmaMethod::Cap;
    return std::nullopt;
}

const char *
protocolToken(DmaMethod method)
{
    switch (method) {
      case DmaMethod::PalCode: return "pal";
      case DmaMethod::KeyBased: return "key-based";
      case DmaMethod::ExtShadow: return "ext-shadow";
      case DmaMethod::Repeated5: return "repeated";
      case DmaMethod::Ring: return "ring";
      case DmaMethod::Cap: return "cap";
      default: return "?";
    }
}

std::string
toHex(std::uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

bool
parseHex(const std::string &s, std::uint64_t &v)
{
    if (s.size() < 3 || s.compare(0, 2, "0x") != 0)
        return false;
    std::uint64_t acc = 0;
    for (std::size_t i = 2; i < s.size(); ++i) {
        const char c = s[i];
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return false;
        if (acc >> 60)
            return false;   // overflow
        acc = (acc << 4) | static_cast<std::uint64_t>(digit);
    }
    v = acc;
    return true;
}

void
writeScheduleJson(std::ostream &os, const Schedule &schedule,
                  const Outcome &outcome)
{
    json::Writer w(os, /*pretty=*/true);
    w.beginObject();
    w.member("schema", scheduleSchema);
    w.member("protocol", schedule.protocol);
    w.member("faults", schedule.faults);
    w.member("weakened_recognizer", schedule.weakRecognizer);
    w.member("weakened_ring", schedule.weakRing);
    w.member("iommu", schedule.iommu);
    w.member("weakened_iommu", schedule.weakIommu);
    w.member("weakened_cap", schedule.weakCap);
    w.member("boundary_space", schedule.boundarySpace);
    w.key("preempt_after");
    w.beginArray();
    for (std::uint64_t b : schedule.preemptAfter)
        w.value(b);
    w.endArray();
    w.key("outcome");
    w.beginObject();
    w.member("finished", outcome.finished);
    w.member("status", toHex(outcome.status));
    w.member("initiations", outcome.initiations);
    w.member("state_hash", toHex(outcome.stateHash));
    w.key("violations");
    w.beginArray();
    for (const Violation &v : outcome.violations) {
        w.beginObject();
        w.member("invariant", v.invariant);
        w.member("detail", v.detail);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.endObject();
    os << "\n";
}

namespace {

bool
fail(std::string *error, const std::string &msg)
{
    if (error != nullptr)
        *error = msg;
    return false;
}

} // namespace

bool
parseScheduleJson(const std::string &text, Schedule &schedule,
                  Outcome &outcome, std::string *error)
{
    std::string perr;
    const json::Value doc = json::parse(text, &perr);
    if (!perr.empty())
        return fail(error, "JSON parse error: " + perr);
    if (!doc.isObject())
        return fail(error, "root is not an object");
    if (!doc["schema"].isString() ||
        doc["schema"].asString() != scheduleSchema) {
        return fail(error, "schema is not '" +
                               std::string(scheduleSchema) + "'");
    }
    if (!doc["protocol"].isString() ||
        !protocolMethod(doc["protocol"].asString())) {
        return fail(error, "unknown protocol");
    }
    if (!doc["faults"].isBool() || !doc["weakened_recognizer"].isBool())
        return fail(error, "faults/weakened_recognizer must be booleans");
    // weakened_ring is optional (schedules predating the descriptor
    // ring omit it); when present it must be a boolean.
    if (!doc["weakened_ring"].isNull() && !doc["weakened_ring"].isBool())
        return fail(error, "weakened_ring must be a boolean");
    // iommu/weakened_iommu likewise postdate the original schema and
    // parse as false when absent.
    if (!doc["iommu"].isNull() && !doc["iommu"].isBool())
        return fail(error, "iommu must be a boolean");
    if (!doc["weakened_iommu"].isNull() && !doc["weakened_iommu"].isBool())
        return fail(error, "weakened_iommu must be a boolean");
    // weakened_cap postdates the original schema too.
    if (!doc["weakened_cap"].isNull() && !doc["weakened_cap"].isBool())
        return fail(error, "weakened_cap must be a boolean");
    if (!doc["boundary_space"].isNumber())
        return fail(error, "boundary_space must be a number");
    if (!doc["preempt_after"].isArray())
        return fail(error, "preempt_after must be an array");

    schedule.protocol = doc["protocol"].asString();
    schedule.faults = doc["faults"].asBool();
    schedule.weakRecognizer = doc["weakened_recognizer"].asBool();
    schedule.weakRing = doc["weakened_ring"].isBool()
                            ? doc["weakened_ring"].asBool()
                            : false;
    schedule.iommu = doc["iommu"].isBool() ? doc["iommu"].asBool() : false;
    schedule.weakIommu = doc["weakened_iommu"].isBool()
                             ? doc["weakened_iommu"].asBool()
                             : false;
    if (schedule.weakIommu)
        schedule.iommu = true;
    schedule.weakCap = doc["weakened_cap"].isBool()
                           ? doc["weakened_cap"].asBool()
                           : false;
    schedule.boundarySpace =
        static_cast<std::uint64_t>(doc["boundary_space"].asNumber());
    schedule.preemptAfter.clear();
    std::uint64_t last = 0;
    for (std::size_t i = 0; i < doc["preempt_after"].size(); ++i) {
        const json::Value &b = doc["preempt_after"][i];
        if (!b.isNumber())
            return fail(error, "preempt_after entries must be numbers");
        const auto v = static_cast<std::uint64_t>(b.asNumber());
        if (v >= schedule.boundarySpace)
            return fail(error, "preempt_after entry out of range");
        if (i > 0 && v < last)
            return fail(error, "preempt_after must be non-decreasing");
        last = v;
        schedule.preemptAfter.push_back(v);
    }

    const json::Value &oc = doc["outcome"];
    if (!oc.isObject())
        return fail(error, "outcome must be an object");
    if (!oc["finished"].isBool() || !oc["initiations"].isNumber())
        return fail(error, "outcome.finished/initiations malformed");
    if (!oc["status"].isString() ||
        !parseHex(oc["status"].asString(), outcome.status)) {
        return fail(error, "outcome.status must be a 0x hex string");
    }
    if (!oc["state_hash"].isString() ||
        !parseHex(oc["state_hash"].asString(), outcome.stateHash)) {
        return fail(error, "outcome.state_hash must be a 0x hex string");
    }
    if (!oc["violations"].isArray())
        return fail(error, "outcome.violations must be an array");
    outcome.finished = oc["finished"].asBool();
    outcome.initiations =
        static_cast<std::uint64_t>(oc["initiations"].asNumber());
    outcome.violations.clear();
    for (std::size_t i = 0; i < oc["violations"].size(); ++i) {
        const json::Value &v = oc["violations"][i];
        if (!v["invariant"].isString() || !v["detail"].isString())
            return fail(error, "violation entries need invariant/detail");
        outcome.violations.push_back(
            {v["invariant"].asString(), v["detail"].asString()});
    }
    return true;
}

} // namespace uldma::check
