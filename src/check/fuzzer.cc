#include "check/fuzzer.hh"

#include <algorithm>
#include <ostream>
#include <unordered_map>
#include <unordered_set>

#include "sim/json.hh"
#include "util/random.hh"

namespace uldma::check {
namespace {

/** splitmix64 finalizer — the same mixer the workload PRNG derivation
 *  uses; good avalanche for combining coverage-edge components. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Stable identity of a scenario config: every knob that changes what
 *  a schedule means. */
std::uint64_t
configSignature(const RunnerConfig &c)
{
    std::uint64_t bits = static_cast<std::uint64_t>(c.method);
    bits = (bits << 1) | (c.faults ? 1 : 0);
    bits = (bits << 1) | (c.weakRecognizer ? 1 : 0);
    bits = (bits << 1) | (c.weakRing ? 1 : 0);
    bits = (bits << 1) | (c.useIommu ? 1 : 0);
    bits = (bits << 1) | (c.weakIommu ? 1 : 0);
    bits = (bits << 1) | (c.weakCap ? 1 : 0);
    return mix64(bits);
}

/** All mutation state for one distinct config. */
struct ConfigState
{
    RunnerConfig config;
    std::uint64_t boundarySpace = 0;
    /** Coverage-novel schedules; mutation parents come from here. */
    std::vector<std::vector<std::uint64_t>> corpus;
    std::size_t statsIndex = 0; ///< into FuzzReport::configs
};

struct Fuzzer
{
    const FuzzConfig &cfg;
    FuzzReport report;
    Random rng;
    std::unordered_set<std::uint64_t> edges;
    std::unordered_set<std::uint64_t> findingKeys;
    std::unordered_map<std::uint64_t, std::size_t> configIndex;
    std::vector<ConfigState> states;
    std::uint64_t corpusTotal = 0;
    std::uint64_t nextSample = 1;

    explicit
    Fuzzer(const FuzzConfig &c)
        : cfg(c), rng(mix64(c.seed ^ 0x756c646d612d667aULL)) // "uldma-fz"
    {
        report.config = cfg;
    }

    /** Count new coverage edges from @p r under @p sig. */
    std::uint64_t
    recordCoverage(std::uint64_t sig, const RunResult &r)
    {
        std::uint64_t fresh = 0;
        for (std::size_t i = 0; i < r.boundaryHashes.size(); ++i) {
            const std::uint64_t e =
                mix64(sig ^ mix64(i + 1) ^ r.boundaryHashes[i]);
            if (edges.insert(e).second)
                ++fresh;
        }
        if (edges.insert(mix64(sig ^ 0x66696e616cULL ^ r.finalHash))
                .second) {
            ++fresh;
        }
        for (const Violation &v : r.violations) {
            const std::uint64_t e =
                mix64(sig ^ 0x76696f6cULL ^ fnv1a(v.invariant));
            if (edges.insert(e).second)
                ++fresh;
        }
        return fresh;
    }

    /** Dedup key: one finding per (config, invariant set). */
    std::uint64_t
    findingKey(std::uint64_t sig, const std::vector<Violation> &vs)
    {
        std::vector<std::uint64_t> names;
        names.reserve(vs.size());
        for (const Violation &v : vs)
            names.push_back(fnv1a(v.invariant));
        std::sort(names.begin(), names.end());
        names.erase(std::unique(names.begin(), names.end()),
                    names.end());
        std::uint64_t key = sig;
        for (std::uint64_t n : names)
            key = mix64(key ^ n);
        return key;
    }

    /** Get-or-create the mutation state for @p config.  A new config
     *  costs one budget-counted probe exec (the empty schedule) that
     *  discovers the boundary space and seeds the corpus. */
    ConfigState &
    stateFor(const RunnerConfig &config)
    {
        const std::uint64_t sig = configSignature(config);
        const auto it = configIndex.find(sig);
        if (it != configIndex.end())
            return states[it->second];

        configIndex.emplace(sig, states.size());
        states.push_back(ConfigState{config, 0, {}, 0});
        ConfigState &st = states.back();
        st.statsIndex = report.configs.size();
        report.configs.push_back(
            FuzzConfigStats{config, 0, 0, 0, 0, 0});
        execute(st, {});
        return st;
    }

    /** Run one schedule under @p st's config, feeding coverage,
     *  corpus and findings.  One unit of budget. */
    void
    execute(ConfigState &st, std::vector<std::uint64_t> pts)
    {
        const std::uint64_t sig = configSignature(st.config);
        const RunResult r = runSchedule(st.config, pts);
        ++report.execs;
        FuzzConfigStats &stats = report.configs[st.statsIndex];
        ++stats.execs;
        st.boundarySpace = r.boundarySpace;
        stats.boundarySpace = r.boundarySpace;

        const std::uint64_t fresh = recordCoverage(sig, r);
        stats.newEdges += fresh;
        if (fresh > 0) {
            st.corpus.push_back(pts);
            ++stats.corpus;
            ++corpusTotal;
        }

        if (!r.violations.empty() &&
            findingKeys.insert(findingKey(sig, r.violations)).second) {
            recordFinding(st, std::move(pts));
            ++stats.findings;
        }

        report.coverageEdges = edges.size();
        report.corpusSize = corpusTotal;
        while (report.execs >= nextSample) {
            report.curve.push_back(CoveragePoint{
                nextSample, report.coverageEdges, report.corpusSize});
            nextSample *= 2;
        }
    }

    void
    recordFinding(const ConfigState &st, std::vector<std::uint64_t> pts)
    {
        FuzzFinding f;
        f.config = st.config;
        f.boundarySpace = st.boundarySpace;
        f.foundAtExec = report.execs;
        if (cfg.shrinkFindings)
            pts = shrink(st.config, std::move(pts), f.shrinkExecs);
        // Re-run the minimal schedule so the recorded outcome is what
        // a --replay of the emitted repro reproduces.
        const RunResult r = runSchedule(st.config, pts);
        ++f.shrinkExecs;
        f.preemptAfter = std::move(pts);
        f.outcome = outcomeOf(r);
        f.expected = configWeakened(st.config);
        report.shrinkExecs += f.shrinkExecs;
        if (f.expected)
            ++report.expectedFindings;
        else
            ++report.unexpectedFindings;
        report.findings.push_back(std::move(f));
    }

    /** Draw a fresh scenario config for the next swarm batch. */
    RunnerConfig
    drawConfig()
    {
        RunnerConfig c;
        c.method = *protocolMethod(
            checkedProtocols[rng.below(std::size(checkedProtocols))]);
        c.faults = rng.chance(0.75);
        if (c.method == DmaMethod::Ring)
            c.useIommu = rng.chance(0.5);
        if (rng.chance(0.5)) {
            // One fault-injection flag per weakened config, drawn
            // from the flags the protocol supports.
            std::vector<int> weakenable{0}; // 0 = weakRecognizer
            if (c.method == DmaMethod::Ring) {
                weakenable.push_back(1); // weakRing
                if (c.useIommu)
                    weakenable.push_back(2); // weakIommu
            }
            if (c.method == DmaMethod::Cap)
                weakenable.push_back(3); // weakCap
            switch (weakenable[rng.below(weakenable.size())]) {
              case 0: c.weakRecognizer = true; break;
              case 1: c.weakRing = true; break;
              case 2: c.weakIommu = true; break;
              case 3: c.weakCap = true; break;
            }
        }
        return c;
    }

    /** Mutate a corpus parent into the next schedule to run. */
    std::vector<std::uint64_t>
    mutate(ConfigState &st)
    {
        const std::uint64_t space = st.boundarySpace;
        std::vector<std::uint64_t> pts =
            st.corpus[rng.below(st.corpus.size())];
        const std::uint64_t ops = 1 + rng.below(3);
        for (std::uint64_t op = 0; op < ops; ++op) {
            switch (rng.below(5)) {
              case 0: // insert a boundary
                pts.push_back(rng.below(space));
                break;
              case 1: // remove one
                if (!pts.empty())
                    pts.erase(pts.begin() +
                              static_cast<std::ptrdiff_t>(
                                  rng.below(pts.size())));
                break;
              case 2: { // shift one by a small delta
                if (pts.empty()) {
                    pts.push_back(rng.below(space));
                    break;
                }
                std::uint64_t &b = pts[rng.below(pts.size())];
                const std::uint64_t delta = rng.inRange(1, 3);
                if (rng.chance(0.5))
                    b = b >= delta ? b - delta : 0;
                else
                    b = std::min(space - 1, b + delta);
                break;
              }
              case 3: // duplicate one (back-to-back preemption)
                if (!pts.empty())
                    pts.push_back(pts[rng.below(pts.size())]);
                break;
              case 4: { // splice with a second parent at a cut point
                const std::vector<std::uint64_t> &other =
                    st.corpus[rng.below(st.corpus.size())];
                const std::uint64_t cut = rng.below(space);
                std::vector<std::uint64_t> spliced;
                for (std::uint64_t b : pts)
                    if (b < cut)
                        spliced.push_back(b);
                for (std::uint64_t b : other)
                    if (b >= cut)
                        spliced.push_back(b);
                pts = std::move(spliced);
                break;
              }
            }
        }
        std::sort(pts.begin(), pts.end());
        while (pts.size() > cfg.maxPoints)
            pts.erase(pts.begin() +
                      static_cast<std::ptrdiff_t>(rng.below(pts.size())));
        return pts;
    }

    FuzzReport
    run()
    {
        while (report.execs < cfg.budgetSchedules) {
            const RunnerConfig config =
                cfg.swarm ? drawConfig() : cfg.runner;
            ConfigState &st = stateFor(config);
            const std::uint64_t batchEnd =
                std::min(cfg.budgetSchedules,
                         report.execs + cfg.batchSchedules);
            while (report.execs < batchEnd)
                execute(st, mutate(st));
        }
        if (report.curve.empty() ||
            report.curve.back().execs != report.execs) {
            report.curve.push_back(CoveragePoint{
                report.execs, report.coverageEdges, report.corpusSize});
        }
        return std::move(report);
    }
};

void
writeConfigMembers(json::Writer &w, const RunnerConfig &c)
{
    w.member("protocol", protocolToken(c.method));
    w.member("faults", c.faults);
    w.member("weakened_recognizer", c.weakRecognizer);
    w.member("weakened_ring", c.weakRing);
    w.member("iommu", c.useIommu);
    w.member("weakened_iommu", c.weakIommu);
    w.member("weakened_cap", c.weakCap);
}

} // namespace

bool
configWeakened(const RunnerConfig &config)
{
    return config.weakRecognizer || config.weakRing ||
           config.weakIommu || config.weakCap;
}

FuzzReport
fuzz(const FuzzConfig &config)
{
    return Fuzzer(config).run();
}

Schedule
findingSchedule(const FuzzFinding &f)
{
    Schedule s;
    s.protocol = protocolToken(f.config.method);
    s.faults = f.config.faults;
    s.weakRecognizer = f.config.weakRecognizer;
    s.weakRing = f.config.weakRing;
    s.iommu = f.config.useIommu;
    s.weakIommu = f.config.weakIommu;
    s.weakCap = f.config.weakCap;
    s.boundarySpace = f.boundarySpace;
    s.preemptAfter = f.preemptAfter;
    return s;
}

void
writeFuzzJson(std::ostream &os, const FuzzReport &report,
              std::optional<std::uint64_t> wallNs,
              std::optional<double> execsPerSec)
{
    json::Writer w(os, /*pretty=*/true);
    w.beginObject();
    w.member("schema", fuzzSchema);
    w.member("mode", report.config.swarm ? "swarm" : "fuzz");
    w.member("seed", report.config.seed);
    w.member("budget_schedules", report.config.budgetSchedules);
    w.member("max_points",
             static_cast<std::uint64_t>(report.config.maxPoints));
    w.member("batch_schedules",
             static_cast<std::uint64_t>(report.config.batchSchedules));
    w.member("shrink", report.config.shrinkFindings);
    w.member("execs", report.execs);
    w.member("shrink_execs", report.shrinkExecs);
    w.member("coverage_edges", report.coverageEdges);
    w.member("corpus_size", report.corpusSize);
    w.member("expected_findings", report.expectedFindings);
    w.member("unexpected_findings", report.unexpectedFindings);
    w.key("coverage_curve");
    w.beginArray();
    for (const CoveragePoint &p : report.curve) {
        w.beginObject();
        w.member("execs", p.execs);
        w.member("edges", p.edges);
        w.member("corpus", p.corpus);
        w.endObject();
    }
    w.endArray();
    w.key("configs");
    w.beginArray();
    for (const FuzzConfigStats &c : report.configs) {
        w.beginObject();
        writeConfigMembers(w, c.config);
        w.member("boundary_space", c.boundarySpace);
        w.member("execs", c.execs);
        w.member("new_edges", c.newEdges);
        w.member("corpus", c.corpus);
        w.member("findings", c.findings);
        w.endObject();
    }
    w.endArray();
    w.key("findings");
    w.beginArray();
    for (const FuzzFinding &f : report.findings) {
        w.beginObject();
        writeConfigMembers(w, f.config);
        w.member("boundary_space", f.boundarySpace);
        w.key("preempt_after");
        w.beginArray();
        for (std::uint64_t b : f.preemptAfter)
            w.value(b);
        w.endArray();
        w.member("found_at_exec", f.foundAtExec);
        w.member("shrink_execs", f.shrinkExecs);
        w.member("expected", f.expected);
        w.key("outcome");
        w.beginObject();
        w.member("finished", f.outcome.finished);
        w.member("status", toHex(f.outcome.status));
        w.member("initiations", f.outcome.initiations);
        w.member("state_hash", toHex(f.outcome.stateHash));
        w.key("violations");
        w.beginArray();
        for (const Violation &v : f.outcome.violations) {
            w.beginObject();
            w.member("invariant", v.invariant);
            w.member("detail", v.detail);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        w.endObject();
    }
    w.endArray();
    if (wallNs)
        w.member("wall_ns", *wallNs);
    if (execsPerSec)
        w.member("execs_per_sec", *execsPerSec);
    w.endObject();
    os << "\n";
}

} // namespace uldma::check
