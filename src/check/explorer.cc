#include "check/explorer.hh"

#include <unordered_set>

namespace uldma::check {
namespace {

struct Dfs
{
    const ExplorerConfig &config;
    ExploreReport &report;
    std::unordered_set<std::uint64_t> visited;
    std::vector<std::uint64_t> prefix;

    bool
    budgetLeft() const
    {
        return config.maxRuns == 0 || report.runs < config.maxRuns;
    }

    /** @return true once a violation has been found (stop the walk). */
    bool
    walk(std::uint64_t min_next)
    {
        if (!budgetLeft()) {
            report.exhausted = false;
            return false;
        }
        const RunResult r = runSchedule(config.runner, prefix);
        ++report.runs;
        if (!r.violations.empty()) {
            report.counterexample = Counterexample{prefix, r};
            return true;
        }
        if (prefix.size() >= config.depth)
            return false;

        // Prefix pruning: if the machine state at this prefix's last
        // preemption was already seen at this length, every extension
        // replays an already-explored future.  The prefix itself was
        // still executed and audited above.
        if (config.prune && !prefix.empty() &&
            r.boundaryHashes.size() == prefix.size()) {
            std::uint64_t key = r.boundaryHashes.back();
            key ^= 0x9e3779b97f4a7c15ULL * (prefix.size() + 1);
            if (!visited.insert(key).second) {
                ++report.pruned;
                return false;
            }
        }

        for (std::uint64_t b = min_next; b < report.boundarySpace; ++b) {
            prefix.push_back(b);
            const bool found = walk(b);
            prefix.pop_back();
            if (found)
                return true;
            if (!report.exhausted)
                return false;
        }
        return false;
    }
};

} // namespace

std::vector<std::uint64_t>
shrink(const RunnerConfig &config, std::vector<std::uint64_t> pts,
       std::uint64_t &runs)
{
    bool reduced = true;
    while (reduced && pts.size() > 1) {
        reduced = false;
        for (std::size_t i = 0; i < pts.size(); ++i) {
            std::vector<std::uint64_t> trial = pts;
            trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(i));
            const RunResult r = runSchedule(config, trial);
            ++runs;
            if (!r.violations.empty()) {
                pts = std::move(trial);
                reduced = true;
                break;
            }
        }
    }
    return pts;
}

ExploreReport
explore(const ExplorerConfig &config)
{
    ExploreReport report;

    // Probe run: an empty schedule determines the boundary space (the
    // victim's initiation length + 1) and audits the undisturbed run.
    const RunResult probe = runSchedule(config.runner, {});
    ++report.runs;
    report.boundarySpace = probe.boundarySpace;
    if (!probe.violations.empty()) {
        report.counterexample = Counterexample{{}, probe};
        return report;
    }
    if (config.depth == 0)
        return report;

    Dfs dfs{config, report, {}, {}};
    for (std::uint64_t b = 0; b < report.boundarySpace; ++b) {
        dfs.prefix.assign({b});
        if (dfs.walk(b) || !report.exhausted)
            break;
        dfs.prefix.clear();
    }

    if (report.counterexample) {
        // Shrink, then re-run the minimal schedule so the recorded
        // result matches what a replay of the shrunk schedule yields.
        Counterexample &cex = *report.counterexample;
        cex.preemptAfter =
            shrink(config.runner, cex.preemptAfter, report.runs);
        cex.result = runSchedule(config.runner, cex.preemptAfter);
        ++report.runs;
    }
    return report;
}

} // namespace uldma::check
