# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--size=256")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart_pal "/root/repo/build/examples/quickstart" "--method=pal" "--show-program")
set_tests_properties(example_quickstart_pal PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pingpong "/root/repo/build/examples/pingpong" "--rounds=2" "--size=128")
set_tests_properties(example_pingpong PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shared_counter "/root/repo/build/examples/shared_counter" "--increments=10")
set_tests_properties(example_shared_counter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_attack_demo "/root/repo/build/examples/attack_demo" "--seeds=3")
set_tests_properties(example_attack_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scatter_gather "/root/repo/build/examples/scatter_gather" "--chunk=512")
set_tests_properties(example_scatter_gather PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
