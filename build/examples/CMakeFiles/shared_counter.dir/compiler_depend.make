# Empty compiler generated dependencies file for shared_counter.
# This may be replaced when dependencies are built.
