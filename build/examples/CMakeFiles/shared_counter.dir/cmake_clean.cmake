file(REMOVE_RECURSE
  "CMakeFiles/shared_counter.dir/shared_counter.cpp.o"
  "CMakeFiles/shared_counter.dir/shared_counter.cpp.o.d"
  "shared_counter"
  "shared_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
