
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/shared_counter.cpp" "examples/CMakeFiles/shared_counter.dir/shared_counter.cpp.o" "gcc" "examples/CMakeFiles/shared_counter.dir/shared_counter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/uldma_core.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/uldma_os.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/uldma_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/dma/CMakeFiles/uldma_dma.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/uldma_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/uldma_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/uldma_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uldma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/uldma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
