# Empty compiler generated dependencies file for scatter_gather.
# This may be replaced when dependencies are built.
