file(REMOVE_RECURSE
  "CMakeFiles/scatter_gather.dir/scatter_gather.cpp.o"
  "CMakeFiles/scatter_gather.dir/scatter_gather.cpp.o.d"
  "scatter_gather"
  "scatter_gather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scatter_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
