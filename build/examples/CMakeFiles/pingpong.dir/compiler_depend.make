# Empty compiler generated dependencies file for pingpong.
# This may be replaced when dependencies are built.
