file(REMOVE_RECURSE
  "libuldma_core.a"
)
