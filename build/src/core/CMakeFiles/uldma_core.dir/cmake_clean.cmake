file(REMOVE_RECURSE
  "CMakeFiles/uldma_core.dir/attack.cc.o"
  "CMakeFiles/uldma_core.dir/attack.cc.o.d"
  "CMakeFiles/uldma_core.dir/experiment.cc.o"
  "CMakeFiles/uldma_core.dir/experiment.cc.o.d"
  "CMakeFiles/uldma_core.dir/machine.cc.o"
  "CMakeFiles/uldma_core.dir/machine.cc.o.d"
  "CMakeFiles/uldma_core.dir/methods.cc.o"
  "CMakeFiles/uldma_core.dir/methods.cc.o.d"
  "CMakeFiles/uldma_core.dir/user_atomics.cc.o"
  "CMakeFiles/uldma_core.dir/user_atomics.cc.o.d"
  "libuldma_core.a"
  "libuldma_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uldma_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
