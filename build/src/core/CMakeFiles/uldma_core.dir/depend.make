# Empty dependencies file for uldma_core.
# This may be replaced when dependencies are built.
