file(REMOVE_RECURSE
  "libuldma_mem.a"
)
