
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/addr_range.cc" "src/mem/CMakeFiles/uldma_mem.dir/addr_range.cc.o" "gcc" "src/mem/CMakeFiles/uldma_mem.dir/addr_range.cc.o.d"
  "/root/repo/src/mem/bus.cc" "src/mem/CMakeFiles/uldma_mem.dir/bus.cc.o" "gcc" "src/mem/CMakeFiles/uldma_mem.dir/bus.cc.o.d"
  "/root/repo/src/mem/merge_buffer.cc" "src/mem/CMakeFiles/uldma_mem.dir/merge_buffer.cc.o" "gcc" "src/mem/CMakeFiles/uldma_mem.dir/merge_buffer.cc.o.d"
  "/root/repo/src/mem/physical_memory.cc" "src/mem/CMakeFiles/uldma_mem.dir/physical_memory.cc.o" "gcc" "src/mem/CMakeFiles/uldma_mem.dir/physical_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/uldma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/uldma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
