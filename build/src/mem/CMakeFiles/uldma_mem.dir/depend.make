# Empty dependencies file for uldma_mem.
# This may be replaced when dependencies are built.
