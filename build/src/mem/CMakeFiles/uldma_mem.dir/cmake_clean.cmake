file(REMOVE_RECURSE
  "CMakeFiles/uldma_mem.dir/addr_range.cc.o"
  "CMakeFiles/uldma_mem.dir/addr_range.cc.o.d"
  "CMakeFiles/uldma_mem.dir/bus.cc.o"
  "CMakeFiles/uldma_mem.dir/bus.cc.o.d"
  "CMakeFiles/uldma_mem.dir/merge_buffer.cc.o"
  "CMakeFiles/uldma_mem.dir/merge_buffer.cc.o.d"
  "CMakeFiles/uldma_mem.dir/physical_memory.cc.o"
  "CMakeFiles/uldma_mem.dir/physical_memory.cc.o.d"
  "libuldma_mem.a"
  "libuldma_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uldma_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
