file(REMOVE_RECURSE
  "libuldma_sim.a"
)
