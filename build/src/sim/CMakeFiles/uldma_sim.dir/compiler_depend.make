# Empty compiler generated dependencies file for uldma_sim.
# This may be replaced when dependencies are built.
