file(REMOVE_RECURSE
  "CMakeFiles/uldma_sim.dir/clocked.cc.o"
  "CMakeFiles/uldma_sim.dir/clocked.cc.o.d"
  "CMakeFiles/uldma_sim.dir/event.cc.o"
  "CMakeFiles/uldma_sim.dir/event.cc.o.d"
  "CMakeFiles/uldma_sim.dir/stats.cc.o"
  "CMakeFiles/uldma_sim.dir/stats.cc.o.d"
  "CMakeFiles/uldma_sim.dir/trace.cc.o"
  "CMakeFiles/uldma_sim.dir/trace.cc.o.d"
  "libuldma_sim.a"
  "libuldma_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uldma_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
