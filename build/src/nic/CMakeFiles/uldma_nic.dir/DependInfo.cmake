
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nic/atomic_unit.cc" "src/nic/CMakeFiles/uldma_nic.dir/atomic_unit.cc.o" "gcc" "src/nic/CMakeFiles/uldma_nic.dir/atomic_unit.cc.o.d"
  "/root/repo/src/nic/network.cc" "src/nic/CMakeFiles/uldma_nic.dir/network.cc.o" "gcc" "src/nic/CMakeFiles/uldma_nic.dir/network.cc.o.d"
  "/root/repo/src/nic/network_interface.cc" "src/nic/CMakeFiles/uldma_nic.dir/network_interface.cc.o" "gcc" "src/nic/CMakeFiles/uldma_nic.dir/network_interface.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dma/CMakeFiles/uldma_dma.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/uldma_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uldma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/uldma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
