file(REMOVE_RECURSE
  "CMakeFiles/uldma_nic.dir/atomic_unit.cc.o"
  "CMakeFiles/uldma_nic.dir/atomic_unit.cc.o.d"
  "CMakeFiles/uldma_nic.dir/network.cc.o"
  "CMakeFiles/uldma_nic.dir/network.cc.o.d"
  "CMakeFiles/uldma_nic.dir/network_interface.cc.o"
  "CMakeFiles/uldma_nic.dir/network_interface.cc.o.d"
  "libuldma_nic.a"
  "libuldma_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uldma_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
