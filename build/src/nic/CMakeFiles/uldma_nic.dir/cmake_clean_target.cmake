file(REMOVE_RECURSE
  "libuldma_nic.a"
)
