# Empty dependencies file for uldma_nic.
# This may be replaced when dependencies are built.
