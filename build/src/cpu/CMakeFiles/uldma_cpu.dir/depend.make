# Empty dependencies file for uldma_cpu.
# This may be replaced when dependencies are built.
