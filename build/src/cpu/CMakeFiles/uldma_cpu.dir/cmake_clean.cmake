file(REMOVE_RECURSE
  "CMakeFiles/uldma_cpu.dir/cpu.cc.o"
  "CMakeFiles/uldma_cpu.dir/cpu.cc.o.d"
  "CMakeFiles/uldma_cpu.dir/dcache.cc.o"
  "CMakeFiles/uldma_cpu.dir/dcache.cc.o.d"
  "CMakeFiles/uldma_cpu.dir/program.cc.o"
  "CMakeFiles/uldma_cpu.dir/program.cc.o.d"
  "libuldma_cpu.a"
  "libuldma_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uldma_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
