file(REMOVE_RECURSE
  "libuldma_cpu.a"
)
