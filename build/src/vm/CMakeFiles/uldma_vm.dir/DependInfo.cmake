
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/page_table.cc" "src/vm/CMakeFiles/uldma_vm.dir/page_table.cc.o" "gcc" "src/vm/CMakeFiles/uldma_vm.dir/page_table.cc.o.d"
  "/root/repo/src/vm/tlb.cc" "src/vm/CMakeFiles/uldma_vm.dir/tlb.cc.o" "gcc" "src/vm/CMakeFiles/uldma_vm.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/uldma_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uldma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/uldma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
