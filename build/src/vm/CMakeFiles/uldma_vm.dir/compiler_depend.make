# Empty compiler generated dependencies file for uldma_vm.
# This may be replaced when dependencies are built.
