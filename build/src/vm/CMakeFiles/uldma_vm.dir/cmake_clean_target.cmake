file(REMOVE_RECURSE
  "libuldma_vm.a"
)
