file(REMOVE_RECURSE
  "CMakeFiles/uldma_vm.dir/page_table.cc.o"
  "CMakeFiles/uldma_vm.dir/page_table.cc.o.d"
  "CMakeFiles/uldma_vm.dir/tlb.cc.o"
  "CMakeFiles/uldma_vm.dir/tlb.cc.o.d"
  "libuldma_vm.a"
  "libuldma_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uldma_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
