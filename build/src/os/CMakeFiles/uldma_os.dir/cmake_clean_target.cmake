file(REMOVE_RECURSE
  "libuldma_os.a"
)
