# Empty compiler generated dependencies file for uldma_os.
# This may be replaced when dependencies are built.
