file(REMOVE_RECURSE
  "CMakeFiles/uldma_os.dir/kernel.cc.o"
  "CMakeFiles/uldma_os.dir/kernel.cc.o.d"
  "CMakeFiles/uldma_os.dir/process.cc.o"
  "CMakeFiles/uldma_os.dir/process.cc.o.d"
  "CMakeFiles/uldma_os.dir/scheduler.cc.o"
  "CMakeFiles/uldma_os.dir/scheduler.cc.o.d"
  "libuldma_os.a"
  "libuldma_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uldma_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
