file(REMOVE_RECURSE
  "libuldma_util.a"
)
