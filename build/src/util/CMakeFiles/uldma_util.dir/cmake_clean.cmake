file(REMOVE_RECURSE
  "CMakeFiles/uldma_util.dir/logging.cc.o"
  "CMakeFiles/uldma_util.dir/logging.cc.o.d"
  "CMakeFiles/uldma_util.dir/options.cc.o"
  "CMakeFiles/uldma_util.dir/options.cc.o.d"
  "CMakeFiles/uldma_util.dir/random.cc.o"
  "CMakeFiles/uldma_util.dir/random.cc.o.d"
  "CMakeFiles/uldma_util.dir/strutil.cc.o"
  "CMakeFiles/uldma_util.dir/strutil.cc.o.d"
  "libuldma_util.a"
  "libuldma_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uldma_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
