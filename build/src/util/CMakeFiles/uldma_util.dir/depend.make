# Empty dependencies file for uldma_util.
# This may be replaced when dependencies are built.
