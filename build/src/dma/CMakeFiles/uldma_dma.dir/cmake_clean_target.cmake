file(REMOVE_RECURSE
  "libuldma_dma.a"
)
