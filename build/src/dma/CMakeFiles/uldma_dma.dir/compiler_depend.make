# Empty compiler generated dependencies file for uldma_dma.
# This may be replaced when dependencies are built.
