file(REMOVE_RECURSE
  "CMakeFiles/uldma_dma.dir/dma_engine.cc.o"
  "CMakeFiles/uldma_dma.dir/dma_engine.cc.o.d"
  "CMakeFiles/uldma_dma.dir/transfer_engine.cc.o"
  "CMakeFiles/uldma_dma.dir/transfer_engine.cc.o.d"
  "libuldma_dma.a"
  "libuldma_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uldma_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
