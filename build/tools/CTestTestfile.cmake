# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_uldma_run "/root/repo/build/tools/uldma_run" "--iterations=50")
set_tests_properties(tool_uldma_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_uldma_run_kernel "/root/repo/build/tools/uldma_run" "--method=kernel" "--iterations=20" "--stats")
set_tests_properties(tool_uldma_run_kernel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
