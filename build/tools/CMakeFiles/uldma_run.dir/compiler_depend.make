# Empty compiler generated dependencies file for uldma_run.
# This may be replaced when dependencies are built.
