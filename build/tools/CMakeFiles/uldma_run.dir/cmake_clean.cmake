file(REMOVE_RECURSE
  "CMakeFiles/uldma_run.dir/uldma_run.cpp.o"
  "CMakeFiles/uldma_run.dir/uldma_run.cpp.o.d"
  "uldma_run"
  "uldma_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uldma_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
