# Empty dependencies file for bench_hooks.
# This may be replaced when dependencies are built.
