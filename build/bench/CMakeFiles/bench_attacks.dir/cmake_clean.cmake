file(REMOVE_RECURSE
  "CMakeFiles/bench_attacks.dir/bench_attacks.cpp.o"
  "CMakeFiles/bench_attacks.dir/bench_attacks.cpp.o.d"
  "bench_attacks"
  "bench_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
