# Empty dependencies file for bench_attacks.
# This may be replaced when dependencies are built.
