file(REMOVE_RECURSE
  "CMakeFiles/bench_bus_speed.dir/bench_bus_speed.cpp.o"
  "CMakeFiles/bench_bus_speed.dir/bench_bus_speed.cpp.o.d"
  "bench_bus_speed"
  "bench_bus_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bus_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
