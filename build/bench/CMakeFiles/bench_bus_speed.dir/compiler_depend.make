# Empty compiler generated dependencies file for bench_bus_speed.
# This may be replaced when dependencies are built.
