file(REMOVE_RECURSE
  "CMakeFiles/bench_instr_counts.dir/bench_instr_counts.cpp.o"
  "CMakeFiles/bench_instr_counts.dir/bench_instr_counts.cpp.o.d"
  "bench_instr_counts"
  "bench_instr_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_instr_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
