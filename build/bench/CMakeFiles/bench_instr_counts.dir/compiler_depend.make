# Empty compiler generated dependencies file for bench_instr_counts.
# This may be replaced when dependencies are built.
