file(REMOVE_RECURSE
  "CMakeFiles/test_model_equivalence.dir/test_model_equivalence.cpp.o"
  "CMakeFiles/test_model_equivalence.dir/test_model_equivalence.cpp.o.d"
  "test_model_equivalence"
  "test_model_equivalence.pdb"
  "test_model_equivalence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
