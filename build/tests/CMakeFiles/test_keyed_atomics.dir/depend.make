# Empty dependencies file for test_keyed_atomics.
# This may be replaced when dependencies are built.
