file(REMOVE_RECURSE
  "CMakeFiles/test_keyed_atomics.dir/test_keyed_atomics.cpp.o"
  "CMakeFiles/test_keyed_atomics.dir/test_keyed_atomics.cpp.o.d"
  "test_keyed_atomics"
  "test_keyed_atomics.pdb"
  "test_keyed_atomics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keyed_atomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
