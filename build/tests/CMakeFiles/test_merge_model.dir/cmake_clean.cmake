file(REMOVE_RECURSE
  "CMakeFiles/test_merge_model.dir/test_merge_model.cpp.o"
  "CMakeFiles/test_merge_model.dir/test_merge_model.cpp.o.d"
  "test_merge_model"
  "test_merge_model.pdb"
  "test_merge_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merge_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
