file(REMOVE_RECURSE
  "CMakeFiles/test_security_edges.dir/test_security_edges.cpp.o"
  "CMakeFiles/test_security_edges.dir/test_security_edges.cpp.o.d"
  "test_security_edges"
  "test_security_edges.pdb"
  "test_security_edges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_security_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
