file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_machine.dir/test_fuzz_machine.cpp.o"
  "CMakeFiles/test_fuzz_machine.dir/test_fuzz_machine.cpp.o.d"
  "test_fuzz_machine"
  "test_fuzz_machine.pdb"
  "test_fuzz_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
