file(REMOVE_RECURSE
  "CMakeFiles/test_event_stress.dir/test_event_stress.cpp.o"
  "CMakeFiles/test_event_stress.dir/test_event_stress.cpp.o.d"
  "test_event_stress"
  "test_event_stress.pdb"
  "test_event_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
