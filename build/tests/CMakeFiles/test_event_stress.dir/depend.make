# Empty dependencies file for test_event_stress.
# This may be replaced when dependencies are built.
