file(REMOVE_RECURSE
  "CMakeFiles/test_integration_dma.dir/test_integration_dma.cpp.o"
  "CMakeFiles/test_integration_dma.dir/test_integration_dma.cpp.o.d"
  "test_integration_dma"
  "test_integration_dma.pdb"
  "test_integration_dma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
