file(REMOVE_RECURSE
  "CMakeFiles/test_dma_wait.dir/test_dma_wait.cpp.o"
  "CMakeFiles/test_dma_wait.dir/test_dma_wait.cpp.o.d"
  "test_dma_wait"
  "test_dma_wait.pdb"
  "test_dma_wait[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dma_wait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
