# Empty compiler generated dependencies file for test_dma_wait.
# This may be replaced when dependencies are built.
