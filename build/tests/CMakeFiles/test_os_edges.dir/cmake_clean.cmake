file(REMOVE_RECURSE
  "CMakeFiles/test_os_edges.dir/test_os_edges.cpp.o"
  "CMakeFiles/test_os_edges.dir/test_os_edges.cpp.o.d"
  "test_os_edges"
  "test_os_edges.pdb"
  "test_os_edges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_os_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
