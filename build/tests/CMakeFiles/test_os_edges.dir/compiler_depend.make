# Empty compiler generated dependencies file for test_os_edges.
# This may be replaced when dependencies are built.
