# Empty dependencies file for test_kernel_reaping.
# This may be replaced when dependencies are built.
