file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_reaping.dir/test_kernel_reaping.cpp.o"
  "CMakeFiles/test_kernel_reaping.dir/test_kernel_reaping.cpp.o.d"
  "test_kernel_reaping"
  "test_kernel_reaping.pdb"
  "test_kernel_reaping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_reaping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
