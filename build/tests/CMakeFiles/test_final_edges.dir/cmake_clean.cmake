file(REMOVE_RECURSE
  "CMakeFiles/test_final_edges.dir/test_final_edges.cpp.o"
  "CMakeFiles/test_final_edges.dir/test_final_edges.cpp.o.d"
  "test_final_edges"
  "test_final_edges.pdb"
  "test_final_edges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_final_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
