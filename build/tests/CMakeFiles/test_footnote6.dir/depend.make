# Empty dependencies file for test_footnote6.
# This may be replaced when dependencies are built.
