file(REMOVE_RECURSE
  "CMakeFiles/test_footnote6.dir/test_footnote6.cpp.o"
  "CMakeFiles/test_footnote6.dir/test_footnote6.cpp.o.d"
  "test_footnote6"
  "test_footnote6.pdb"
  "test_footnote6[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_footnote6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
