file(REMOVE_RECURSE
  "CMakeFiles/test_dcache.dir/test_dcache.cpp.o"
  "CMakeFiles/test_dcache.dir/test_dcache.cpp.o.d"
  "test_dcache"
  "test_dcache.pdb"
  "test_dcache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
