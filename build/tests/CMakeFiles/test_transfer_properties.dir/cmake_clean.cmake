file(REMOVE_RECURSE
  "CMakeFiles/test_transfer_properties.dir/test_transfer_properties.cpp.o"
  "CMakeFiles/test_transfer_properties.dir/test_transfer_properties.cpp.o.d"
  "test_transfer_properties"
  "test_transfer_properties.pdb"
  "test_transfer_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transfer_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
