# Empty compiler generated dependencies file for test_transfer_properties.
# This may be replaced when dependencies are built.
