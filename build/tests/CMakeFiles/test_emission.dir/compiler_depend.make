# Empty compiler generated dependencies file for test_emission.
# This may be replaced when dependencies are built.
