file(REMOVE_RECURSE
  "CMakeFiles/test_emission.dir/test_emission.cpp.o"
  "CMakeFiles/test_emission.dir/test_emission.cpp.o.d"
  "test_emission"
  "test_emission.pdb"
  "test_emission[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
