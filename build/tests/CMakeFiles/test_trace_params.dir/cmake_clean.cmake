file(REMOVE_RECURSE
  "CMakeFiles/test_trace_params.dir/test_trace_params.cpp.o"
  "CMakeFiles/test_trace_params.dir/test_trace_params.cpp.o.d"
  "test_trace_params"
  "test_trace_params.pdb"
  "test_trace_params[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
